package fdb

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/csvio"
	"repro/internal/frep"
	"repro/internal/relation"
)

// DB is an in-memory factorised database: named relations plus a shared
// string dictionary. A DB is safe for concurrent use: writers
// (Create/Insert/LoadTSV) take the write lock, while Query, Prepare and
// Stmt.Exec work on copy-on-prepare snapshots under the read lock.
type DB struct {
	mu    sync.RWMutex
	dict  *relation.Dict
	rels  map[string]*relation.Relation
	ord   []string
	vers  map[string]uint64 // per-relation data version, for cache validity
	cache *planCache
	// par is the database-wide execution parallelism; 0 means "default",
	// resolved to runtime.GOMAXPROCS(0) at execution time. Read atomically
	// so Exec never contends with SetParallelism.
	par atomic.Int32
}

// New returns an empty database.
func New() *DB {
	return &DB{
		dict:  relation.NewDict(),
		rels:  map[string]*relation.Relation{},
		vers:  map[string]uint64{},
		cache: newPlanCache(defaultPlanCacheCap),
	}
}

// Create adds a relation with the given attribute names (unqualified; they
// are stored as "name.attr").
func (db *DB) Create(name string, attrs ...string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.rels[name]; ok {
		return fmt.Errorf("fdb: relation %q already exists", name)
	}
	if len(attrs) == 0 {
		return fmt.Errorf("fdb: relation %q needs at least one attribute", name)
	}
	sch := make(relation.Schema, len(attrs))
	for i, a := range attrs {
		sch[i] = relation.Attribute(name + "." + a)
	}
	if err := sch.Validate(); err != nil {
		return err
	}
	db.rels[name] = relation.New(name, sch)
	db.ord = append(db.ord, name)
	db.vers[name]++
	return nil
}

// MustCreate is Create, panicking on error (for examples and tests).
func (db *DB) MustCreate(name string, attrs ...string) {
	if err := db.Create(name, attrs...); err != nil {
		panic(err)
	}
}

// Insert appends one tuple; values may be int, int64 or string (strings are
// dictionary-encoded). Prepared statements snapshot their inputs, so an
// Insert is visible to statements prepared (and ad-hoc queries issued)
// after it returns.
func (db *DB) Insert(name string, values ...interface{}) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	r, ok := db.rels[name]
	if !ok {
		return fmt.Errorf("fdb: unknown relation %q", name)
	}
	if len(values) != len(r.Schema) {
		return fmt.Errorf("fdb: relation %q has arity %d, got %d values", name, len(r.Schema), len(values))
	}
	t := make(relation.Tuple, len(values))
	for i, v := range values {
		val, err := db.encode(v)
		if err != nil {
			return err
		}
		t[i] = val
	}
	r.AppendTuple(t)
	db.vers[name]++
	db.cache.invalidate(name)
	return nil
}

// MustInsert is Insert, panicking on error.
func (db *DB) MustInsert(name string, values ...interface{}) {
	if err := db.Insert(name, values...); err != nil {
		panic(err)
	}
}

// LoadTSV reads one relation from a tab-separated file (first line
// "Name<TAB>attr…", see internal/csvio) into the database and returns its
// name.
func (db *DB) LoadTSV(path string) (string, error) {
	rel, err := csvio.ReadFile(path, db.dict)
	if err != nil {
		return "", err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.rels[rel.Name]; ok {
		return "", fmt.Errorf("fdb: relation %q already exists", rel.Name)
	}
	db.rels[rel.Name] = rel
	db.ord = append(db.ord, rel.Name)
	db.vers[rel.Name]++
	db.cache.invalidate(rel.Name)
	return rel.Name, nil
}

// SaveTSV writes a stored relation to a tab-separated file. The read lock
// is held for the duration of the write, so the file is a consistent
// snapshot even under concurrent inserts.
func (db *DB) SaveTSV(path, name string) error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	r, ok := db.rels[name]
	if !ok {
		return fmt.Errorf("fdb: unknown relation %q", name)
	}
	return csvio.WriteFile(path, r, db.dict)
}

// Relations lists the relation names in creation order.
func (db *DB) Relations() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return append([]string(nil), db.ord...)
}

// Relation exposes a snapshot of a stored relation. The snapshot has its
// own tuple-slice header (safe to read while concurrent Inserts append)
// but shares tuple storage with the database — treat it as read-only; do
// not sort, dedup or otherwise mutate it in place.
func (db *DB) Relation(name string) (*relation.Relation, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	r, ok := db.rels[name]
	if !ok {
		return nil, false
	}
	snap := relation.New(r.Name, r.Schema)
	snap.Tuples = r.Tuples[:len(r.Tuples):len(r.Tuples)]
	return snap, true
}

// Dict exposes the database dictionary (for rendering). The dictionary is
// safe for concurrent use.
func (db *DB) Dict() *relation.Dict { return db.dict }

// Query compiles and runs a select-project-join query and returns its
// factorised result: it finds an f-tree of minimal cost s(T) for the query,
// builds the factorised representation directly from the input relations,
// then applies constant selections and the projection.
//
// Query is a thin wrapper over the prepared-statement machinery: the
// compiled plan is looked up in (and inserted into) an internal LRU cache
// keyed by the query's canonical fingerprint, so repeating the same query
// skips clause validation, input dedup, f-tree search and input sorting.
// CacheStats exposes the hit counters. Queries with Param placeholders are
// rejected — use Prepare and Exec to bind them.
func (db *DB) Query(clauses ...Clause) (*Result, error) {
	s, err := compileSpec(modeQuery, clauses)
	if err != nil {
		return nil, err
	}
	if len(s.aggs) > 0 {
		return nil, fmt.Errorf("fdb: query computes aggregates; use QueryAgg")
	}
	st, err := db.cachedStmt(s)
	if err != nil {
		return nil, err
	}
	return st.Exec()
}

// QueryAgg compiles and runs an aggregation query — From/Eq/Cmp clauses
// plus at least one Agg, optionally GroupBy — and returns its aggregate
// rows. The query compiles like Query (shared plan cache, keyed by a
// fingerprint extended with the grouping and aggregate list; the compiled
// f-tree is restructured so group-by attributes sit above aggregated
// ones), then the aggregates are evaluated in a single pass over the
// factorised result, never over its flattening.
func (db *DB) QueryAgg(clauses ...Clause) (*AggResult, error) {
	s, err := compileSpec(modeQuery, clauses)
	if err != nil {
		return nil, err
	}
	if len(s.aggs) == 0 {
		return nil, fmt.Errorf("fdb: QueryAgg needs at least one Agg clause")
	}
	st, err := db.cachedStmt(s)
	if err != nil {
		return nil, err
	}
	return st.ExecAgg()
}

// cachedStmt resolves a compiled statement for the spec through the plan
// cache (compiling and inserting on miss), the shared path behind Query
// and QueryAgg.
func (db *DB) cachedStmt(s *spec) (*Stmt, error) {
	if ps := s.params(); len(ps) > 0 {
		return nil, fmt.Errorf("fdb: unbound parameter %q: use Prepare and Exec for parameterised queries", ps[0])
	}
	// Reject before the cache lookup: the fingerprint of an agg-free spec
	// ignores groupBy, so this invalid shape would otherwise alias the
	// cached plain query and succeed on a warm cache.
	if len(s.groupBy) > 0 && len(s.aggs) == 0 {
		return nil, fmt.Errorf("fdb: GroupBy needs at least one Agg clause")
	}
	if db.cache.capacity() <= 0 {
		return db.prepareSpec(s)
	}
	key, vers, err := db.fingerprint(s)
	if err != nil {
		return nil, err
	}
	if st, ok := db.cache.get(key, vers); ok {
		return st, nil
	}
	// The miss path resolves the relations a second time inside
	// prepareSpec; that duplication is two map lookups and constant
	// encodings, noise next to the clone+dedup+f-tree search it performs.
	st, err := db.prepareSpec(s)
	if err != nil {
		return nil, err
	}
	// Only cache the plan if no write landed while it was compiling:
	// a stale-versioned entry would survive the write's invalidate sweep
	// yet never match on lookup, pinning dead snapshots until eviction.
	if db.versMatch(vers) {
		db.cache.put(key, st, vers)
	}
	return st, nil
}

// versMatch reports whether the given relation versions are still current.
func (db *DB) versMatch(vers map[string]uint64) bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	for name, v := range vers {
		if db.vers[name] != v {
			return false
		}
	}
	return true
}

// fingerprint canonically fingerprints the query spec against the current
// catalogue and snapshots the data versions of the involved relations.
// Versions are read before any data is copied, so a cached plan can never
// claim to be newer than the snapshot it holds.
func (db *DB) fingerprint(s *spec) (string, map[string]uint64, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	q := &core.Query{Equalities: s.eqs, Projection: s.project}
	vers := make(map[string]uint64, len(s.from))
	for _, name := range s.from {
		r, ok := db.rels[name]
		if !ok {
			return "", nil, fmt.Errorf("fdb: unknown relation %q", name)
		}
		q.Relations = append(q.Relations, r)
		vers[name] = db.vers[name]
	}
	for _, sel := range s.sels {
		v, err := db.encode(sel.val)
		if err != nil {
			return "", nil, err
		}
		q.Selections = append(q.Selections, core.ConstSel{A: sel.attr, Op: sel.op, C: v})
	}
	key := q.Fingerprint()
	// A per-query parallelism override is carried on the compiled statement,
	// so it is part of the plan identity (the tree itself is unaffected, but
	// a cached plan must not leak one query's override into another).
	if s.par > 0 {
		key = fmt.Sprintf("%s|par %d", key, s.par)
	}
	// Ordering participates in planning (the tree is reordered/restructured
	// so the keys stream) and limit/offset/distinct ride on the compiled
	// statement, so all four are part of the plan identity.
	if len(s.orderBy) > 0 {
		var b strings.Builder
		b.WriteString(key)
		b.WriteString("|order")
		for _, k := range s.orderBy {
			b.WriteByte(' ')
			b.WriteString(k.String())
		}
		key = b.String()
	}
	if s.offset > 0 {
		key = fmt.Sprintf("%s|off %d", key, s.offset)
	}
	if s.limit >= 0 {
		key = fmt.Sprintf("%s|lim %d", key, s.limit)
	}
	if s.distinct {
		key += "|distinct"
	}
	// Aggregation restructures the compiled tree (group attributes lifted),
	// so grouping and aggregate list are part of the plan identity.
	if len(s.aggs) > 0 {
		var b strings.Builder
		b.WriteString(key)
		b.WriteString("|groupby")
		for _, a := range s.groupBy {
			b.WriteByte(' ')
			b.WriteString(string(a))
		}
		b.WriteString("|aggs")
		for _, sp := range s.aggs {
			b.WriteByte(' ')
			b.WriteString(sp.Label())
		}
		key = b.String()
	}
	return key, vers, nil
}

// CacheStats returns the plan cache counters: Hits and Misses count Query
// lookups (a stale entry counts as a miss), Entries is the current size.
func (db *DB) CacheStats() CacheStats { return db.cache.stats() }

// SetPlanCacheCapacity resizes the plan cache (default 64 entries); 0
// disables caching. Counters are preserved.
func (db *DB) SetPlanCacheCapacity(n int) { db.cache.resize(n) }

// SetParallelism sets the database-wide execution parallelism: the number
// of workers query execution (factorisation build and aggregation) may use.
// n == 1 forces the serial code path; n <= 0 restores the default
// (runtime.GOMAXPROCS at execution time). Per-query WithParallelism clauses
// override this setting. Safe to call concurrently with running queries —
// each execution reads the value once when it starts.
func (db *DB) SetParallelism(n int) {
	if n < 0 {
		n = 0
	}
	db.par.Store(int32(n))
}

// Parallelism returns the parallelism executions currently resolve to.
func (db *DB) Parallelism() int {
	if p := int(db.par.Load()); p > 0 {
		return p
	}
	return runtime.GOMAXPROCS(0)
}

// orderLess returns the value comparator ORDER BY uses, mirroring how
// results render: dictionary-decoded values compare lexicographically, plain
// integers numerically, and integers sort before dictionary strings. With an
// empty dictionary (pure integer data) it returns nil — native value order
// already is decoded order, so ordered iteration needs no permutations.
func (db *DB) orderLess() frep.ValueLess {
	// Snapshot the append-only dictionary once: every code in the result
	// predates this call, and the comparator runs O(N log N) times on the
	// sort paths — a lock round-trip per comparison would dominate.
	strs := db.dict.Snapshot()
	if len(strs) == 0 {
		return nil
	}
	return func(a, b relation.Value) bool {
		oka := a >= 0 && int(a) < len(strs)
		okb := b >= 0 && int(b) < len(strs)
		switch {
		case oka && okb:
			return strs[a] < strs[b]
		case !oka && !okb:
			return a < b
		default:
			return !oka
		}
	}
}

// encode turns a Go value into an engine Value. The dictionary is
// internally synchronised, so encode is safe under either DB lock.
func (db *DB) encode(v interface{}) (relation.Value, error) {
	switch x := v.(type) {
	case int:
		return relation.Value(x), nil
	case int64:
		return relation.Value(x), nil
	case relation.Value:
		return x, nil
	case string:
		return db.dict.Encode(x), nil
	}
	return 0, fmt.Errorf("fdb: unsupported value type %T", v)
}
