// Retailer: a larger synthetic many-to-many workload in the spirit of the
// paper's motivation — orders, stock and dispatch availability with heavy
// many-to-many relationships — showing orders-of-magnitude compression of
// the factorised result and sustained compactness across a pipeline of
// follow-up queries on factorised data (the claim of Experiments 3 and 4).
package main

import (
	"fmt"
	"math/rand"

	"repro"
)

func main() {
	rng := rand.New(rand.NewSource(7))
	db := fdb.New()

	const (
		items     = 50
		orders    = 2000
		locations = 40
		stock     = 800 // (location, item) availability pairs
		disps     = 300 // (dispatcher, location) pairs
	)
	db.MustCreate("Orders", "oid", "item")
	for i := 0; i < orders; i++ {
		db.MustInsert("Orders", i, rng.Intn(items))
	}
	db.MustCreate("Stock", "location", "item")
	for i := 0; i < stock; i++ {
		db.MustInsert("Stock", rng.Intn(locations), rng.Intn(items))
	}
	db.MustCreate("Disp", "dispatcher", "location")
	for i := 0; i < disps; i++ {
		db.MustInsert("Disp", i%120, rng.Intn(locations))
	}

	res, err := db.Query(
		fdb.From("Orders", "Stock", "Disp"),
		fdb.Eq("Orders.item", "Stock.item"),
		fdb.Eq("Stock.location", "Disp.location"))
	must(err)
	fmt.Println("orders ⋈ stock ⋈ dispatchers (many-to-many):")
	fmt.Printf("  result tuples:          %d\n", res.Count())
	fmt.Printf("  flat data elements:     %d\n", res.FlatSize())
	fmt.Printf("  factorised singletons:  %d\n", res.Size())
	fmt.Printf("  compression factor:     %.1fx\n", float64(res.FlatSize())/float64(res.Size()))
	fmt.Println("  f-tree:")
	fmt.Print(res.FTree())

	// Follow-up queries run directly on the factorised result.
	local, err := res.Where(fdb.Cmp("Stock.location", fdb.LT, 10))
	must(err)
	fmt.Println("\nσ location<10 on the factorised result:")
	fmt.Printf("  tuples %d, singletons %d (flat would be %d)\n",
		local.Count(), local.Size(), local.FlatSize())

	pairs, err := local.ProjectTo("Orders.oid", "Disp.dispatcher")
	must(err)
	fmt.Println("\nπ oid,dispatcher of that:")
	fmt.Printf("  tuples %d, singletons %d\n", pairs.Count(), pairs.Size())

	// Selection joining two attribute classes on factorised data: which
	// orders could be dispatched by a dispatcher whose id equals the item
	// id (an artificial equality to exercise the f-plan optimiser).
	eq, err := res.Where(fdb.Eq("Orders.item", "Disp.dispatcher"))
	must(err)
	fmt.Println("\nσ item=dispatcher on the factorised result (restructuring f-plan):")
	fmt.Printf("  tuples %d, singletons %d\n", eq.Count(), eq.Size())

	// Serving traffic: the per-item availability lookup is one prepared
	// statement executed with a bound parameter per request — the join is
	// compiled (f-tree search, dedup, sort) exactly once.
	perItem, err := db.Prepare(
		fdb.From("Orders", "Stock", "Disp"),
		fdb.Eq("Orders.item", "Stock.item"),
		fdb.Eq("Stock.location", "Disp.location"),
		fdb.Cmp("Orders.item", fdb.EQ, fdb.Param("item")))
	must(err)
	fmt.Println("\nprepared per-item lookup (compiled once, executed per request):")
	var served int64
	for item := 0; item < 8; item++ {
		r, err := perItem.Exec(fdb.Arg("item", item))
		must(err)
		served += r.Count()
	}
	fmt.Printf("  8 requests served, %d tuples total, params %v\n", served, perItem.Params())
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
