// Configurator: the constraint-satisfaction use case sketched in the
// paper's introduction ([5], partner-units / product configuration). The
// space of feasible configurations — compatible combinations of chassis,
// CPU, memory, storage and PSU — is a large many-to-many join whose
// factorised representation is tiny, and interactive narrowing (the user
// picks a component) is an f-plan selection on factorised data.
package main

import (
	"fmt"
	"math/rand"

	"repro"
)

func main() {
	rng := rand.New(rand.NewSource(3))
	db := fdb.New()

	// Compatibility relations between neighbouring component families.
	const chassis, cpus, mems, disks, psus = 12, 30, 25, 40, 15
	db.MustCreate("CC", "chassis", "cpu") // chassis accepts cpu
	for c := 0; c < chassis; c++ {
		for u := 0; u < cpus; u++ {
			if rng.Intn(3) != 0 {
				db.MustInsert("CC", c, u)
			}
		}
	}
	db.MustCreate("CM", "cpu", "mem") // cpu supports memory kind
	for u := 0; u < cpus; u++ {
		for m := 0; m < mems; m++ {
			if rng.Intn(3) != 0 {
				db.MustInsert("CM", u, m)
			}
		}
	}
	db.MustCreate("CD", "chassis", "disk") // chassis has bays for disk
	for c := 0; c < chassis; c++ {
		for d := 0; d < disks; d++ {
			if rng.Intn(2) == 0 {
				db.MustInsert("CD", c, d)
			}
		}
	}
	db.MustCreate("CP", "chassis", "psu") // chassis fits psu
	for c := 0; c < chassis; c++ {
		for p := 0; p < psus; p++ {
			if rng.Intn(2) == 0 {
				db.MustInsert("CP", c, p)
			}
		}
	}

	space, err := db.Query(
		fdb.From("CC", "CM", "CD", "CP"),
		fdb.Eq("CC.cpu", "CM.cpu"),
		fdb.Eq("CC.chassis", "CD.chassis"),
		fdb.Eq("CC.chassis", "CP.chassis"))
	must(err)
	fmt.Println("feasible configuration space (chassis, cpu, mem, disk, psu):")
	fmt.Printf("  configurations:        %d\n", space.Count())
	fmt.Printf("  flat data elements:    %d\n", space.FlatSize())
	fmt.Printf("  factorised singletons: %d\n", space.Size())
	fmt.Printf("  compression:           %.0fx\n", float64(space.FlatSize())/float64(space.Size()))
	fmt.Println("  f-tree (grouping hierarchy of choices):")
	fmt.Print(space.FTree())

	// Interactive narrowing: the user fixes chassis 3; the engine filters
	// the factorised space in one pass and re-normalises.
	pick, err := space.Where(fdb.Cmp("CC.chassis", fdb.EQ, 3))
	must(err)
	fmt.Println("\nafter picking chassis=3:")
	fmt.Printf("  configurations: %d, singletons: %d\n", pick.Count(), pick.Size())

	// Which CPUs remain available together with compatible memory?
	options, err := pick.ProjectTo("CC.cpu", "CM.mem")
	must(err)
	fmt.Printf("  remaining (cpu, mem) options: %d, factorised in %d singletons\n",
		options.Count(), options.Size())

	// A configurator serves this narrowing to every visitor: prepare the
	// space restricted to a parameterised chassis once and execute it per
	// session — the join is compiled exactly once.
	perChassis, err := db.Prepare(
		fdb.From("CC", "CM", "CD", "CP"),
		fdb.Eq("CC.cpu", "CM.cpu"),
		fdb.Eq("CC.chassis", "CD.chassis"),
		fdb.Eq("CC.chassis", "CP.chassis"),
		fdb.Cmp("CC.chassis", fdb.EQ, fdb.Param("chassis")))
	must(err)
	fmt.Println("\nprepared per-chassis narrowing (compiled once):")
	for c := 0; c < 4; c++ {
		sess, err := perChassis.Exec(fdb.Arg("chassis", c))
		must(err)
		fmt.Printf("  chassis=%d: %d configurations in %d singletons\n",
			c, sess.Count(), sess.Size())
	}
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
