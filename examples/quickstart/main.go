// Quickstart: the paper's running example (Figures 1 and 2, Examples 1 and
// 2) through the public API — load the grocery database, evaluate Q1 and Q2
// factorised, then join the two factorised results on item and location.
package main

import (
	"fmt"

	"repro"
)

func main() {
	db := fdb.New()
	db.MustCreate("Orders", "oid", "item")
	for _, r := range [][2]string{{"01", "Milk"}, {"01", "Cheese"}, {"02", "Melon"}, {"03", "Cheese"}, {"03", "Melon"}} {
		db.MustInsert("Orders", r[0], r[1])
	}
	db.MustCreate("Store", "location", "item")
	for _, r := range [][2]string{{"Istanbul", "Milk"}, {"Istanbul", "Cheese"}, {"Istanbul", "Melon"},
		{"Izmir", "Milk"}, {"Antalya", "Milk"}, {"Antalya", "Cheese"}} {
		db.MustInsert("Store", r[0], r[1])
	}
	db.MustCreate("Disp", "dispatcher", "location")
	for _, r := range [][2]string{{"Adnan", "Istanbul"}, {"Adnan", "Izmir"}, {"Yasemin", "Istanbul"}, {"Volkan", "Antalya"}} {
		db.MustInsert("Disp", r[0], r[1])
	}
	db.MustCreate("Produce", "supplier", "item")
	for _, r := range [][2]string{{"Guney", "Milk"}, {"Guney", "Cheese"}, {"Dikici", "Milk"}, {"Byzantium", "Melon"}} {
		db.MustInsert("Produce", r[0], r[1])
	}
	db.MustCreate("Serve", "supplier", "location")
	for _, r := range [][2]string{{"Guney", "Antalya"}, {"Dikici", "Istanbul"}, {"Dikici", "Izmir"},
		{"Dikici", "Antalya"}, {"Byzantium", "Istanbul"}} {
		db.MustInsert("Serve", r[0], r[1])
	}

	// Q1: orders with items, pickup locations and available dispatchers.
	q1, err := db.Query(
		fdb.From("Orders", "Store", "Disp"),
		fdb.Eq("Orders.item", "Store.item"),
		fdb.Eq("Store.location", "Disp.location"))
	must(err)
	fmt.Println("Q1 = Orders ⋈item Store ⋈location Disp")
	fmt.Printf("  tuples: %d, flat data elements: %d, factorised singletons: %d\n",
		q1.Count(), q1.FlatSize(), q1.Size())
	fmt.Println("  f-tree:")
	indent(q1.FTree())
	fmt.Println("  factorisation:")
	fmt.Println("   ", q1)

	// Q2: suppliers with their items and served locations. s(Q2) = 1.
	q2, err := db.Query(
		fdb.From("Produce", "Serve"),
		fdb.Eq("Produce.supplier", "Serve.supplier"))
	must(err)
	fmt.Println("\nQ2 = Produce ⋈supplier Serve")
	fmt.Printf("  tuples: %d, factorised singletons: %d\n", q2.Count(), q2.Size())
	fmt.Println("  factorisation:")
	fmt.Println("   ", q2)

	// Example 2: join the two *factorised* results on item and location —
	// the engine restructures Q2's factorisation (swap) before merging.
	joined, err := q1.Join(q2,
		fdb.Eq("Orders.item", "Produce.item"),
		fdb.Eq("Store.location", "Serve.location"))
	must(err)
	fmt.Println("\nQ1 ⋈item,location Q2: possible suppliers of ordered items")
	fmt.Printf("  tuples: %d, flat data elements: %d, factorised singletons: %d\n",
		joined.Count(), joined.FlatSize(), joined.Size())
	fmt.Println("  result rows:")
	fmt.Print(joined.Table(6))

	// Prepared statements: compile Q1 with a parameterised item selection
	// once, then execute it per constant — the f-tree search, input dedup
	// and sorting are all paid at Prepare time.
	stmt, err := db.Prepare(
		fdb.From("Orders", "Store", "Disp"),
		fdb.Eq("Orders.item", "Store.item"),
		fdb.Eq("Store.location", "Disp.location"),
		fdb.Cmp("Orders.item", fdb.EQ, fdb.Param("item")))
	must(err)
	fmt.Printf("\nprepared Q1(item): s(T)=%.0f, params %v\n", stmt.Cost(), stmt.Params())
	for _, item := range []string{"Milk", "Cheese", "Melon"} {
		r, err := stmt.Exec(fdb.Arg("item", item))
		must(err)
		fmt.Printf("  item=%-6s -> %d tuples in %d singletons\n", item, r.Count(), r.Size())
	}

	// Ad-hoc queries reuse plans too: db.Query goes through an LRU plan
	// cache keyed by the query's canonical fingerprint.
	for i := 0; i < 3; i++ {
		_, err := db.Query(
			fdb.From("Produce", "Serve"),
			fdb.Eq("Produce.supplier", "Serve.supplier"))
		must(err)
	}
	stats := db.CacheStats()
	fmt.Printf("\nplan cache after repeating Q2: %d hits, %d misses, %d entries\n",
		stats.Hits, stats.Misses, stats.Entries)
}

func indent(s string) {
	fmt.Print("    " + s[:len(s)-1])
	fmt.Println()
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
