// Analytics: OLAP-style aggregation straight on the factorised result.
//
// The walkthrough builds a many-to-many orders/stock/dispatch database,
// then answers GROUP BY questions — order counts, oid sums, distinct items
// per location — with fdb.QueryAgg and prepared aggregate statements. The
// aggregates are computed in a single pass over the factorised
// representation (counts multiply across products, sums cross-combine by
// count-weighting), so the flat result, orders of magnitude larger, is
// never enumerated. The final section times exactly that: the same
// aggregate via Enumerate-then-fold versus the factorised pass.
package main

import (
	"fmt"
	"math/rand"
	"time"

	"repro"
)

func main() {
	rng := rand.New(rand.NewSource(7))
	db := fdb.New()

	const (
		items     = 50
		orders    = 4000
		locations = 40
		stock     = 1600 // (location, item) availability pairs
		disps     = 600  // (dispatcher, location) pairs
	)
	db.MustCreate("Orders", "oid", "item")
	for i := 0; i < orders; i++ {
		db.MustInsert("Orders", i, rng.Intn(items))
	}
	db.MustCreate("Stock", "location", "item")
	for i := 0; i < stock; i++ {
		db.MustInsert("Stock", rng.Intn(locations), rng.Intn(items))
	}
	db.MustCreate("Disp", "dispatcher", "location")
	for i := 0; i < disps; i++ {
		db.MustInsert("Disp", i%120, rng.Intn(locations))
	}

	join := []fdb.Clause{
		fdb.From("Orders", "Stock", "Disp"),
		fdb.Eq("Orders.item", "Stock.item"),
		fdb.Eq("Stock.location", "Disp.location"),
	}

	// How big is the result we are about to aggregate?
	res, err := db.Query(join...)
	must(err)
	fmt.Println("orders ⋈ stock ⋈ dispatchers:")
	fmt.Printf("  result tuples:         %d\n", res.Count())
	fmt.Printf("  flat data elements:    %d\n", res.FlatSize())
	fmt.Printf("  factorised singletons: %d\n", res.Size())

	// Global aggregates: one row, no enumeration.
	global, err := db.QueryAgg(append(join,
		fdb.Agg(fdb.Count, ""),
		fdb.Agg(fdb.Min, "Orders.oid"),
		fdb.Agg(fdb.Max, "Orders.oid"),
		fdb.Agg(fdb.CountDistinct, "Orders.item"))...)
	must(err)
	fmt.Println("\nglobal aggregates (single pass over the f-rep):")
	fmt.Print(global.Table(0))

	// GROUP BY location: the compiler lifts Stock.location above the
	// aggregated attributes at Prepare time, so each group's subtree is
	// aggregated independently in one linear pass.
	perLoc, err := db.QueryAgg(append(join,
		fdb.GroupBy("Stock.location"),
		fdb.Agg(fdb.Count, ""),
		fdb.Agg(fdb.Sum, "Orders.oid"),
		fdb.Agg(fdb.CountDistinct, "Orders.item"))...)
	must(err)
	fmt.Println("\nper-location order volume (first 8 groups):")
	fmt.Print(perLoc.Table(8))
	fmt.Printf("  … %d groups total\n", perLoc.Len())

	// Prepared aggregation: compile once, run per parameter binding.
	st, err := db.Prepare(append(join,
		fdb.Cmp("Stock.location", fdb.LT, fdb.Param("maxloc")),
		fdb.GroupBy("Disp.dispatcher"),
		fdb.Agg(fdb.Count, ""))...)
	must(err)
	for _, maxloc := range []int{10, 20} {
		ar, err := st.ExecAgg(fdb.Arg("maxloc", maxloc))
		must(err)
		fmt.Printf("\ndispatcher workload, locations < %d: %d dispatchers, busiest %s\n",
			maxloc, ar.Len(), busiest(ar))
	}

	// The point of it all: the same per-location count, factorised versus
	// enumerate-then-fold over the flat result.
	start := time.Now()
	_, err = db.QueryAgg(append(join,
		fdb.GroupBy("Stock.location"), fdb.Agg(fdb.Count, ""))...)
	must(err)
	factMS := float64(time.Since(start).Microseconds()) / 1000

	start = time.Now()
	counts := map[string]int64{}
	locCol := -1
	for i, a := range res.Schema() {
		if a == "Stock.location" {
			locCol = i
		}
	}
	res.Each(func(row []string) bool {
		counts[row[locCol]]++
		return true
	})
	foldMS := float64(time.Since(start).Microseconds()) / 1000
	fmt.Printf("\nper-location count: factorised %.1f ms (incl. compile+build), enumerate-then-fold %.1f ms — %.0fx\n",
		factMS, foldMS, foldMS/factMS)
	fmt.Printf("(groups agree: %v)\n", agree(perLoc, counts))
}

// busiest returns the group key with the highest count.
func busiest(ar *fdb.AggResult) string {
	best, bestV := "", int64(-1)
	for i := 0; i < ar.Len(); i++ {
		if v := ar.Value(i, 0); v > bestV {
			best, bestV = ar.Key(i)[0], v
		}
	}
	return best
}

// agree cross-checks the factorised counts against the folded ones.
func agree(ar *fdb.AggResult, counts map[string]int64) bool {
	if ar.Len() != len(counts) {
		return false
	}
	for i := 0; i < ar.Len(); i++ {
		if counts[ar.Key(i)[0]] != ar.Value(i, 0) {
			return false
		}
	}
	return true
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
