// Chain: Example 6 of the paper. The chain query Qn joins n binary
// relations R1(A1,B1) ⋈ … ⋈ Rn(An,Bn) on Bi = Ai+1. Flat results grow like
// |D|^Θ(n); factorised results stay within |D|^Θ(log n) because the optimal
// f-tree has logarithmic depth. This example prints the growth table.
package main

import (
	"fmt"
	"math/rand"

	"repro"
)

func main() {
	fmt.Println("chain query Qn = R1 ⋈ R2 ⋈ … ⋈ Rn (Example 6)")
	fmt.Println("n | result tuples | flat elements | factorised singletons | compression")
	for _, n := range []int{2, 3, 4, 5, 6} {
		rng := rand.New(rand.NewSource(11))
		db := fdb.New()
		var clauses []fdb.Clause
		var names []string
		for i := 1; i <= n; i++ {
			name := fmt.Sprintf("R%d", i)
			db.MustCreate(name, "a", "b")
			for j := 0; j < 60; j++ {
				db.MustInsert(name, rng.Intn(4), rng.Intn(4))
			}
			names = append(names, name)
		}
		clauses = append(clauses, fdb.From(names...))
		for i := 1; i < n; i++ {
			clauses = append(clauses, fdb.Eq(
				fmt.Sprintf("R%d.b", i), fmt.Sprintf("R%d.a", i+1)))
		}
		// Compile once with Prepare; Exec builds the factorised result.
		// (With parameters, the same plan would serve many constants.)
		stmt, err := db.Prepare(clauses...)
		if err != nil {
			panic(err)
		}
		res, err := stmt.Exec()
		if err != nil {
			panic(err)
		}
		comp := float64(res.FlatSize()) / float64(res.Size())
		fmt.Printf("%d | %13d | %13d | %21d | %10.1fx\n",
			n, res.Count(), res.FlatSize(), res.Size(), comp)
	}
	fmt.Println("\nThe factorised size grows roughly linearly in n while the flat size")
	fmt.Println("multiplies with every extra relation — the exponential gap of Section 2.")
}
