package fdb

import (
	"fmt"
	"strings"
	"testing"
)

// scrambledDB inserts strings in deliberately non-lexicographic order, so
// dictionary codes (insertion order) disagree with decoded string order:
// any range selection that compared codes would produce wrong answers.
func scrambledDB(t *testing.T) *DB {
	t.Helper()
	db := New()
	db.MustCreate("P", "id", "name")
	for i, name := range []string{"pear", "apple", "quince", "banana", "melon", "cherry"} {
		db.MustInsert("P", fmt.Sprintf("i%d", i+1), name)
	}
	return db
}

func names(t *testing.T, res *Result) string {
	t.Helper()
	col := -1
	for i, a := range res.Schema() {
		if a == "P.name" {
			col = i
		}
	}
	if col < 0 {
		t.Fatalf("P.name not in result schema %v", res.Schema())
	}
	var out []string
	for _, row := range res.Rows(0) {
		out = append(out, row[col])
	}
	return strings.Join(out, " ")
}

// TestStringRangeDecodedOrder pins the satellite bugfix: string range
// selections (LT/LE/GT/GE) compare in decoded lexicographic order, not in
// insertion-order code space.
func TestStringRangeDecodedOrder(t *testing.T) {
	db := scrambledDB(t)
	// "pear" has the smallest code (inserted first) but sorts late: a code
	// comparison would return nothing for LT and almost everything for GT.
	res, err := db.Query(From("P"), Cmp("P.name", LT, "cherry"), OrderBy("P.name"))
	if err != nil {
		t.Fatal(err)
	}
	if got := names(t, res); got != "apple banana" {
		t.Errorf("name < cherry: %q, want \"apple banana\"", got)
	}
	res, err = db.Query(From("P"), Cmp("P.name", GE, "melon"), OrderBy("P.name"))
	if err != nil {
		t.Fatal(err)
	}
	if got := names(t, res); got != "melon pear quince" {
		t.Errorf("name >= melon: %q, want \"melon pear quince\"", got)
	}
	// Constants absent from the dictionary still cut the range correctly.
	res, err = db.Query(From("P"), Cmp("P.name", GT, "coconut"), Cmp("P.name", LE, "pea"), OrderBy("P.name"))
	if err != nil {
		t.Fatal(err)
	}
	if got := names(t, res); got != "melon" {
		t.Errorf("coconut < name <= pea: %q, want \"melon\"", got)
	}
}

// TestStringRangeOnResultWhere: the same decoded-order contract on the
// Result.Where read path.
func TestStringRangeOnResultWhere(t *testing.T) {
	db := scrambledDB(t)
	base, err := db.Query(From("P"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := base.Where(Cmp("P.name", GE, "cherry"), Cmp("P.name", LT, "pear"))
	if err != nil {
		t.Fatal(err)
	}
	ordered, err := db.Query(From("P"), Cmp("P.name", GE, "cherry"), Cmp("P.name", LT, "pear"), OrderBy("P.name"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Count() != 2 || names(t, ordered) != "cherry melon" {
		t.Errorf("cherry <= name < pear: count %d, ordered %q", res.Count(), names(t, ordered))
	}
}

// TestStringParamRange: string ranges bound through Param/Arg resolve per
// execution in decoded order, and rebinding moves the cut.
func TestStringParamRange(t *testing.T) {
	db := scrambledDB(t)
	st, err := db.Prepare(From("P"), Cmp("P.name", LT, Param("cut")), OrderBy("P.name"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := st.Exec(Arg("cut", "cherry"))
	if err != nil {
		t.Fatal(err)
	}
	if got := names(t, res); got != "apple banana" {
		t.Errorf("name < cherry (param): %q, want \"apple banana\"", got)
	}
	res, err = st.Exec(Arg("cut", "pineapple"))
	if err != nil {
		t.Fatal(err)
	}
	if got := names(t, res); got != "apple banana cherry melon pear" {
		t.Errorf("name < pineapple (param): %q", got)
	}
}

// TestUnseenStringConstantsDontGrowDict pins the satellite bugfix: a read
// path must never mint a dictionary code for a constant the database has
// never stored — across Query, Result.Where, and Param binding, for EQ, NE
// and range operators.
func TestUnseenStringConstantsDontGrowDict(t *testing.T) {
	db := scrambledDB(t)
	base := db.Dict().Len()

	// EQ miss: empty result.
	res, err := db.Query(From("P"), Cmp("P.name", EQ, "durian"))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Empty() {
		t.Errorf("name = durian matched %d tuples", res.Count())
	}
	// NE miss: everything passes.
	res, err = db.Query(From("P"), Cmp("P.name", NE, "durian"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Count() != 6 {
		t.Errorf("name != durian matched %d tuples, want 6", res.Count())
	}
	// Range miss: decoded-order cut.
	if _, err = db.Query(From("P"), Cmp("P.name", LT, "durian")); err != nil {
		t.Fatal(err)
	}
	// Result.Where with an unseen constant.
	full, err := db.Query(From("P"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err = full.Where(Cmp("P.name", EQ, "durian")); err != nil {
		t.Fatal(err)
	}
	// Param binding with an unseen constant.
	st, err := db.Prepare(From("P"), Cmp("P.name", EQ, Param("x")))
	if err != nil {
		t.Fatal(err)
	}
	res, err = st.Exec(Arg("x", "durian"))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Empty() {
		t.Errorf("param name = durian matched %d tuples", res.Count())
	}

	if got := db.Dict().Len(); got != base {
		t.Fatalf("read paths grew the dictionary: %d codes, was %d", got, base)
	}

	// Writes still mint codes — the dictionary is read-only for reads only.
	// The insert carries two fresh strings ("i7" and "durian").
	db.MustInsert("P", "i7", "durian")
	if got := db.Dict().Len(); got != base+2 {
		t.Fatalf("insert of new strings did not mint codes: %d codes, was %d", got, base)
	}
	res, err = db.Query(From("P"), Cmp("P.name", EQ, "durian"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Count() != 1 {
		t.Errorf("name = durian after insert matched %d tuples, want 1", res.Count())
	}
}
