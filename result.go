package fdb

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/fplan"
	"repro/internal/frep"
	"repro/internal/opt"
	"repro/internal/relation"
)

// Result is a factorised query result, carried end-to-end in the
// arena-backed columnar encoding (frep.Enc): enumeration, counting and
// aggregation never materialise the pointer form. Follow-up queries
// (Where, Select, ProjectTo, Join) run directly on the encoded
// representation, using the optimisers to pick cheap f-plans.
type Result struct {
	db  *DB
	enc *frep.Enc
	// Lazily decoded pointer form for Rep(); results are otherwise
	// immutable and shared freely across goroutines, so the decode is
	// guarded.
	repOnce sync.Once
	rep     *frep.FRep
}

// Size returns the number of singletons (the paper's |E|).
func (r *Result) Size() int { return r.enc.Size() }

// Count returns the number of represented tuples.
func (r *Result) Count() int64 { return r.enc.Count() }

// Empty reports whether the result is the empty relation.
func (r *Result) Empty() bool { return r.enc.IsEmpty() }

// FlatSize returns Count() times the number of visible attributes: the
// number of data elements a flat representation would hold. Like Count it
// saturates at math.MaxInt64 instead of overflowing.
func (r *Result) FlatSize() int64 { return r.enc.FlatSize() }

// Schema lists the result attributes in enumeration order.
func (r *Result) Schema() []string {
	sch := r.enc.Schema()
	out := make([]string, len(sch))
	for i, a := range sch {
		out[i] = string(a)
	}
	return out
}

// FTree renders the result's factorisation tree.
func (r *Result) FTree() string { return r.enc.Tree.String() }

// String renders the factorised representation in the paper's notation,
// decoding dictionary values (through the cached pointer form — rendering
// is the one surface that wants the tree shape).
func (r *Result) String() string { return r.Rep().StringDict(r.db.dict) }

// Each enumerates the tuples (constant delay) as string-decoded rows until
// fn returns false. The row slice is reused between calls — clone it to
// retain (Rows does).
func (r *Result) Each(fn func(row []string) bool) {
	row := make([]string, len(r.enc.Schema()))
	r.enc.Enumerate(func(t relation.Tuple) bool {
		for i, v := range t {
			row[i] = r.db.dict.Decode(v)
		}
		return fn(row)
	})
}

// Rows materialises up to limit rows (limit <= 0: all).
func (r *Result) Rows(limit int) [][]string {
	var out [][]string
	r.Each(func(row []string) bool {
		out = append(out, append([]string(nil), row...))
		return limit <= 0 || len(out) < limit
	})
	return out
}

// Enc exposes the underlying encoded representation (advanced use: direct
// access to the internal packages).
func (r *Result) Enc() *frep.Enc { return r.enc }

// Rep exposes the pointer form of the representation (advanced use). It is
// decoded from the encoded form on first call and cached (safe for
// concurrent callers); mutating it does not affect the result.
func (r *Result) Rep() *frep.FRep {
	r.repOnce.Do(func() { r.rep = r.enc.Decode() })
	return r.rep
}

// Iter returns a resumable constant-delay iterator over the result's
// tuples (raw values; use Each/Rows for dictionary-decoded output). The
// iterator walks the encoded columns directly and allocates nothing per
// tuple.
func (r *Result) Iter() *frep.EncIterator { return frep.NewEncIterator(r.enc) }

// IterShards splits the enumeration into n independent iterators over
// contiguous slices of the enumeration order (the root union is
// partitioned; draining shard 0, then 1, … reproduces Iter exactly).
// Results are immutable, so the shards may be drained by n concurrent
// goroutines — the parallel counterpart of Iter for consumers that want to
// scan large results with all cores.
func (r *Result) IterShards(n int) []*frep.EncIterator { return r.enc.EnumerateShards(n) }

// Where applies equality conditions to the factorised result: the engine
// searches for an optimal f-plan (restructuring + merge/absorb operators)
// and executes it on the encoded representation (encoded operators are
// pure, so the receiver is unchanged; a new Result is returned).
func (r *Result) Where(clauses ...Clause) (*Result, error) {
	s, err := compileSpec(modeWhere, clauses)
	if err != nil {
		return nil, err
	}
	enc := r.enc
	// Constant selections first (cheapest, Section 4).
	for _, sel := range s.sels {
		v, err := r.db.encode(sel.val)
		if err != nil {
			return nil, err
		}
		enc, err = fplan.ApplyEnc(fplan.SelectConst{A: sel.attr, Op: sel.op, C: v}, enc)
		if err != nil {
			return nil, err
		}
	}
	var conds []opt.Condition
	for _, e := range s.eqs {
		if enc.Tree.NodeOf(e.A) == nil || enc.Tree.NodeOf(e.B) == nil {
			return nil, fmt.Errorf("fdb: condition %s=%s references attribute not in result", e.A, e.B)
		}
		if enc.Tree.NodeOf(e.A) != enc.Tree.NodeOf(e.B) {
			conds = append(conds, opt.Condition{A: e.A, B: e.B})
		}
	}
	if len(conds) > 0 {
		res, err := opt.ExhaustivePlan(enc.Tree, conds, opt.PlanSearchOptions{})
		if err != nil {
			// Fall back to the greedy heuristic on large instances.
			g, gerr := opt.GreedyPlan(enc.Tree, conds)
			if gerr != nil {
				return nil, err
			}
			res = g
		}
		for _, op := range res.Plan.Ops {
			enc, err = fplan.ApplyEnc(op, enc)
			if err != nil {
				return nil, err
			}
		}
	}
	if s.project != nil {
		enc, err = fplan.ApplyEnc(fplan.Project{Attrs: s.project}, enc)
		if err != nil {
			return nil, err
		}
	}
	return &Result{db: r.db, enc: enc}, nil
}

// Join combines two factorised results over disjoint attributes and applies
// the given equality conditions — the Q1 ⋈ Q2 scenario of Example 2. Both
// results must come from the same DB: values are dictionary-encoded per
// database, so joining across databases would silently compare unrelated
// codes and decode garbage.
func (r *Result) Join(other *Result, clauses ...Clause) (*Result, error) {
	if other == nil {
		return nil, fmt.Errorf("fdb: Join with nil result")
	}
	if r.db != other.db {
		return nil, fmt.Errorf("fdb: Join across different DB instances: the dictionary encodings are incompatible")
	}
	prod, err := fplan.ProductEnc(r.enc, other.enc)
	if err != nil {
		return nil, err
	}
	joined := &Result{db: r.db, enc: prod}
	if len(clauses) == 0 {
		return joined, nil
	}
	return joined.Where(clauses...)
}

// ProjectTo projects the factorised result onto the given attributes.
func (r *Result) ProjectTo(attrs ...string) (*Result, error) {
	var as []relation.Attribute
	for _, a := range attrs {
		as = append(as, relation.Attribute(a))
	}
	enc, err := fplan.ApplyEnc(fplan.Project{Attrs: as}, r.enc)
	if err != nil {
		return nil, err
	}
	return &Result{db: r.db, enc: enc}, nil
}

// Table renders the enumerated result (up to limit rows) as an aligned
// table for display.
func (r *Result) Table(limit int) string {
	var b strings.Builder
	b.WriteString(strings.Join(r.Schema(), "\t"))
	b.WriteByte('\n')
	for _, row := range r.Rows(limit) {
		b.WriteString(strings.Join(row, "\t"))
		b.WriteByte('\n')
	}
	return b.String()
}

// SortedSchema returns the schema sorted alphabetically (stable rendering
// helper for tests).
func (r *Result) SortedSchema() []string {
	s := r.Schema()
	sort.Strings(s)
	return s
}

// AggResult is the result of an aggregation query (QueryAgg or
// Stmt.ExecAgg): one row per group, sorted by group key, with
// dictionary-decoded key accessors and typed aggregate values. A global
// aggregate (no GroupBy) has one row with an empty key — or zero rows if
// the query result is empty.
type AggResult struct {
	db      *DB
	groupBy []relation.Attribute
	specs   []frep.AggSpec
	rows    []frep.AggRow
}

// Len returns the number of groups.
func (r *AggResult) Len() int { return len(r.rows) }

// Schema lists the output columns: the group-by attributes followed by one
// label per aggregate ("count", "sum(Orders.qty)", …).
func (r *AggResult) Schema() []string {
	out := make([]string, 0, len(r.groupBy)+len(r.specs))
	for _, a := range r.groupBy {
		out = append(out, string(a))
	}
	for _, s := range r.specs {
		out = append(out, s.Label())
	}
	return out
}

// Key returns row i's group key, dictionary-decoded (empty for a global
// aggregate).
func (r *AggResult) Key(i int) []string {
	out := make([]string, len(r.rows[i].Key))
	for j, v := range r.rows[i].Key {
		out[j] = r.db.dict.Decode(v)
	}
	return out
}

// Value returns row i's value for the j-th Agg clause.
func (r *AggResult) Value(i, j int) int64 { return r.rows[i].Vals[j] }

// Int returns row i's value for the aggregate with the given label (as in
// Schema(), e.g. "count" or "min(Store.location)").
func (r *AggResult) Int(i int, label string) (int64, error) {
	for j, s := range r.specs {
		if s.Label() == label {
			return r.rows[i].Vals[j], nil
		}
	}
	return 0, fmt.Errorf("fdb: no aggregate %q in result (have %v)", label, r.Schema()[len(r.groupBy):])
}

// Group returns the row index of the given decoded group key, or -1.
// (Comparison is on decoded strings, so looking up an unknown key never
// grows the dictionary.)
func (r *AggResult) Group(key ...string) int {
	for i := range r.rows {
		k := r.Key(i)
		if len(k) != len(key) {
			continue
		}
		match := true
		for j := range key {
			if k[j] != key[j] {
				match = false
				break
			}
		}
		if match {
			return i
		}
	}
	return -1
}

// Rows materialises up to limit rows (limit <= 0: all) as decoded strings:
// group keys followed by aggregate values.
func (r *AggResult) Rows(limit int) [][]string {
	n := len(r.rows)
	if limit > 0 && limit < n {
		n = limit
	}
	out := make([][]string, 0, n)
	for i := 0; i < n; i++ {
		row := make([]string, 0, len(r.groupBy)+len(r.specs))
		row = append(row, r.Key(i)...)
		for _, v := range r.rows[i].Vals {
			row = append(row, strconv.FormatInt(v, 10))
		}
		out = append(out, row)
	}
	return out
}

// Table renders the result (up to limit rows) as a tab-separated table.
func (r *AggResult) Table(limit int) string {
	var b strings.Builder
	b.WriteString(strings.Join(r.Schema(), "\t"))
	b.WriteByte('\n')
	for _, row := range r.Rows(limit) {
		b.WriteString(strings.Join(row, "\t"))
		b.WriteByte('\n')
	}
	return b.String()
}
