package fdb

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/fplan"
	"repro/internal/frep"
	"repro/internal/opt"
	"repro/internal/relation"
)

// Result is a factorised query result, carried end-to-end in the
// arena-backed columnar encoding (frep.Enc): enumeration, counting and
// aggregation never materialise the pointer form. Follow-up queries
// (Where, Select, ProjectTo, Join) run directly on the encoded
// representation, using the optimisers to pick cheap f-plans.
type Result struct {
	db  *DB
	enc *frep.Enc
	// Ordered retrieval state (OrderBy/Offset/Limit clauses): enumeration
	// surfaces stream through an order-aware iterator; the representation
	// itself stays factorised and unsorted.
	order  []frep.OrderKey
	offset int
	limit  int // -1: no limit
	less   frep.ValueLess
	// Lazily resolved order plan: the enc actually enumerated (possibly a
	// sibling-reordered view sharing the arena) and its streaming plan (nil:
	// bounded-heap sort fallback).
	ordOnce   sync.Once
	ordEnc    *frep.Enc
	ordPlan   *frep.EncOrder
	ordStream bool
	// Lazily materialised sort-fallback rows: the sort runs once per result,
	// every retrieval call replays a fresh cursor over the shared slice.
	sortOnce sync.Once
	sortRows []relation.Tuple
	// Lazily decoded pointer form for Rep(); results are otherwise
	// immutable and shared freely across goroutines, so the decode is
	// guarded.
	repOnce sync.Once
	rep     *frep.FRep
	// Lazily computed bag flag: UnionAll leaves duplicate union entries in
	// the encoding, and those entries' subtrees are not merged — retrieval
	// over such a representation must sort.
	bagOnce sync.Once
	bag     bool
}

// newResult wraps an encoded representation in an (unordered, unlimited)
// result. Limit uses -1 as "none", so every construction site must go
// through here rather than a bare literal.
func newResult(db *DB, enc *frep.Enc) *Result {
	return &Result{db: db, enc: enc, limit: -1}
}

// ordered reports whether retrieval goes through the order/offset/limit
// machinery.
func (r *Result) ordered() bool { return len(r.order) > 0 || r.offset > 0 || r.limit >= 0 }

// isBag reports (once, cached) whether the encoding carries duplicate union
// entries — the UnionAll representation. Bag enumeration cannot stream off
// the structure: two equal adjacent entries hold separate subtrees whose
// tuple sequences would need merging, so retrieval sorts instead.
func (r *Result) isBag() bool {
	r.bagOnce.Do(func() { r.bag = r.enc.HasDupEntries() })
	return r.bag
}

// resolveOrder decides, once, how the ORDER BY streams: directly off the
// encoding when the keys already label the pre-order prefix; off a
// sibling-reordered view (Reindex shares the arena) when only the child
// order is in the way; otherwise the bounded-heap sort fallback.
func (r *Result) resolveOrder() {
	r.ordOnce.Do(func() {
		r.ordEnc = r.enc
		if r.isBag() {
			// A bag representation (UnionAll) carries duplicate union
			// entries whose subtrees differ; streaming would emit each
			// subtree in order but not the merge of the two, so every
			// retrieval sorts (canonical schema order when no keys).
			return
		}
		if len(r.order) == 0 {
			r.ordStream = true // enumeration order, just clipped
			return
		}
		if p, ok := frep.ResolveOrder(r.enc, r.order, r.less); ok {
			r.ordPlan, r.ordStream = p, true
			return
		}
		t := r.enc.Tree.Clone()
		if fplan.ReorderForOrder(t, r.order) {
			if e2, err := r.enc.Reindex(t); err == nil {
				if p, ok := frep.ResolveOrder(e2, r.order, r.less); ok {
					r.ordEnc, r.ordPlan, r.ordStream = e2, p, true
				}
			}
		}
	})
}

// OrderStreamed reports whether this result's ordered retrieval streams
// structurally off the factorised representation (no sort). It is false for
// unordered results and for the bounded-heap fallback. Unlike the
// plan-time Stmt.OrderStreamable, this is the exec-time truth: it accounts
// for any restructuring the projection applied.
func (r *Result) OrderStreamed() bool {
	if len(r.order) == 0 {
		return false
	}
	r.resolveOrder()
	return r.ordStream
}

// enumEnc returns the encoding enumeration runs over (the sibling-reordered
// view when ordering required one; schema accessors follow it so rows and
// column names always agree).
func (r *Result) enumEnc() *frep.Enc {
	if !r.ordered() {
		return r.enc
	}
	r.resolveOrder()
	return r.ordEnc
}

// Size returns the number of singletons (the paper's |E|).
func (r *Result) Size() int { return r.enc.Size() }

// Count returns the number of retrievable tuples: the represented count,
// clipped by Offset and Limit.
func (r *Result) Count() int64 {
	c := r.enc.Count()
	if r.offset > 0 {
		c -= int64(r.offset)
		if c < 0 {
			c = 0
		}
	}
	if r.limit >= 0 && c > int64(r.limit) {
		c = int64(r.limit)
	}
	return c
}

// Empty reports whether the result has no tuples (an empty relation, an
// Offset past the end, or Limit(0)).
func (r *Result) Empty() bool {
	if r.enc.IsEmpty() {
		return true
	}
	return r.ordered() && r.Count() == 0
}

// FlatSize returns Count() times the number of visible attributes: the
// number of data elements a flat representation of the retrievable result
// would hold. Like Count it saturates at math.MaxInt64.
func (r *Result) FlatSize() int64 { return frep.SatMul(r.Count(), int64(len(r.enc.Schema()))) }

// Schema lists the result attributes in enumeration order.
func (r *Result) Schema() []string {
	sch := r.enumEnc().Schema()
	out := make([]string, len(sch))
	for i, a := range sch {
		out[i] = string(a)
	}
	return out
}

// FTree renders the result's factorisation tree.
func (r *Result) FTree() string { return r.enumEnc().Tree.String() }

// String renders the factorised representation in the paper's notation,
// decoding dictionary values (through the cached pointer form — rendering
// is the one surface that wants the tree shape).
func (r *Result) String() string { return r.Rep().StringDict(r.db.dict) }

// Each enumerates the tuples as string-decoded rows until fn returns false,
// honouring OrderBy, Offset and Limit. The row slice is reused between calls
// — clone it to retain (Rows does).
func (r *Result) Each(fn func(row []string) bool) {
	it := r.Iter()
	row := make([]string, len(it.Schema()))
	for {
		t, ok := it.Next()
		if !ok {
			return
		}
		for i, v := range t {
			row[i] = r.db.dict.Decode(v)
		}
		if !fn(row) {
			return
		}
	}
}

// Rows materialises up to limit rows (limit <= 0: all).
func (r *Result) Rows(limit int) [][]string {
	var out [][]string
	r.Each(func(row []string) bool {
		out = append(out, append([]string(nil), row...))
		return limit <= 0 || len(out) < limit
	})
	return out
}

// Enc exposes the underlying encoded representation (advanced use: direct
// access to the internal packages).
func (r *Result) Enc() *frep.Enc { return r.enc }

// Rep exposes the pointer form of the representation (advanced use). It is
// decoded from the encoded form on first call and cached (safe for
// concurrent callers); mutating it does not affect the result.
func (r *Result) Rep() *frep.FRep {
	r.repOnce.Do(func() { r.rep = r.enc.Decode() })
	return r.rep
}

// Iter returns a resumable iterator over the result's tuples (raw values;
// use Each/Rows for dictionary-decoded output), honouring OrderBy, Offset
// and Limit. Unordered results and order-compatible OrderBys walk the
// encoded columns directly with constant delay and no per-tuple allocation
// (with a Limit, retrieval visits O(offset+limit) entries and stops);
// incompatible orders materialise through a bounded heap.
func (r *Result) Iter() frep.TupleIter {
	if !r.ordered() && !r.isBag() {
		return frep.NewEncIterator(r.enc)
	}
	r.resolveOrder()
	if !r.ordStream {
		r.sortOnce.Do(func() {
			r.sortRows = frep.SortedRows(r.enc, r.order, r.less, r.offset, r.limit)
		})
		return frep.ReplayIter(r.enc.Schema(), r.sortRows)
	}
	var inner frep.TupleIter
	if r.ordPlan != nil {
		inner = frep.NewOrderedEncIterator(r.ordEnc, r.ordPlan)
	} else {
		inner = frep.NewEncIterator(r.ordEnc)
	}
	return frep.Clip(inner, r.offset, r.limit)
}

// IterShards splits the enumeration into n independent iterators over
// contiguous slices of the enumeration order (the root union is
// partitioned; draining shard 0, then 1, … reproduces the unordered Iter
// exactly). Results are immutable, so the shards may be drained by n
// concurrent goroutines — the parallel counterpart of Iter for consumers
// that want to scan large results with all cores. Shards ignore OrderBy,
// Offset and Limit: they partition the representation, not the ordered
// stream.
func (r *Result) IterShards(n int) []*frep.EncIterator { return r.enc.EnumerateShards(n) }

// Where applies equality conditions to the factorised result: the engine
// searches for an optimal f-plan (restructuring + merge/absorb operators)
// and executes it on the encoded representation (encoded operators are
// pure, so the receiver is unchanged; a new Result is returned).
func (r *Result) Where(clauses ...Clause) (*Result, error) {
	if r.ordered() {
		return nil, fmt.Errorf("fdb: Where on an ordered/limited result is not supported; apply OrderBy/Limit to the final query")
	}
	s, err := compileSpec(modeWhere, clauses)
	if err != nil {
		return nil, err
	}
	enc := r.enc
	// Constant selections first (cheapest, Section 4). String constants
	// resolve through the read-only dictionary path: an equality on an
	// already-encoded string compiles to a code selection, everything else —
	// ranges (decoded lexicographic order) and equalities on unseen strings
	// (empty or pass-through, never a fresh code) — runs as a predicate
	// selection.
	for _, sel := range s.sels {
		if str, isStr := sel.val.(string); isStr {
			var err error
			if v, ok := r.db.dict.Lookup(str); ok && (sel.op == fplan.Eq || sel.op == fplan.Ne) {
				enc, err = fplan.ApplyEnc(fplan.SelectConst{A: sel.attr, Op: sel.op, C: v}, enc)
			} else {
				enc, err = fplan.ApplyEnc(fplan.SelectFn{
					A:     sel.attr,
					Keep:  r.db.stringSelPred(sel.op, str),
					Label: fmt.Sprintf("%s %q", sel.op, str),
				}, enc)
			}
			if err != nil {
				return nil, err
			}
			continue
		}
		v, err := r.db.encode(sel.val)
		if err != nil {
			return nil, err
		}
		enc, err = fplan.ApplyEnc(fplan.SelectConst{A: sel.attr, Op: sel.op, C: v}, enc)
		if err != nil {
			return nil, err
		}
	}
	var conds []opt.Condition
	for _, e := range s.eqs {
		if enc.Tree.NodeOf(e.A) == nil || enc.Tree.NodeOf(e.B) == nil {
			return nil, fmt.Errorf("fdb: condition %s=%s references attribute not in result", e.A, e.B)
		}
		if enc.Tree.NodeOf(e.A) != enc.Tree.NodeOf(e.B) {
			conds = append(conds, opt.Condition{A: e.A, B: e.B})
		}
	}
	if len(conds) > 0 {
		res, err := opt.ExhaustivePlan(enc.Tree, conds, opt.PlanSearchOptions{})
		if err != nil {
			// Fall back to the greedy heuristic on large instances.
			g, gerr := opt.GreedyPlan(enc.Tree, conds)
			if gerr != nil {
				return nil, err
			}
			res = g
		}
		for _, op := range res.Plan.Ops {
			enc, err = fplan.ApplyEnc(op, enc)
			if err != nil {
				return nil, err
			}
		}
	}
	if s.project != nil {
		enc, err = fplan.ApplyEnc(fplan.Project{Attrs: s.project}, enc)
		if err != nil {
			return nil, err
		}
	}
	return newResult(r.db, enc), nil
}

// Join combines two factorised results over disjoint attributes and applies
// the given equality conditions — the Q1 ⋈ Q2 scenario of Example 2. Both
// results must come from the same DB: values are dictionary-encoded per
// database, so joining across databases would silently compare unrelated
// codes and decode garbage.
func (r *Result) Join(other *Result, clauses ...Clause) (*Result, error) {
	if other == nil {
		return nil, fmt.Errorf("fdb: Join with nil result")
	}
	if r.db != other.db {
		return nil, fmt.Errorf("fdb: Join across different DB instances: the dictionary encodings are incompatible")
	}
	if r.ordered() || other.ordered() {
		return nil, fmt.Errorf("fdb: Join of an ordered/limited result is not supported; apply OrderBy/Limit to the final query")
	}
	prod, err := fplan.ProductEnc(r.enc, other.enc)
	if err != nil {
		return nil, err
	}
	joined := newResult(r.db, prod)
	if len(clauses) == 0 {
		return joined, nil
	}
	return joined.Where(clauses...)
}

// Union returns the set union of two factorised results over the same
// visible attributes, computed natively on the encoded representations: a
// simultaneous walk of both encodings' sorted unions emitting through the
// arena builder, never through the flat tuples (see frep.UnionEnc for the
// alignment and decomposability rules). Both operands must come from the
// same DB (shared dictionary); the result has set semantics.
func (r *Result) Union(other *Result) (*Result, error) {
	return r.setOp("Union", frep.UnionEnc, other)
}

// UnionAll returns the bag union of two factorised results: every tuple of
// both operands, duplicates preserved. The duplicates live as doubled
// entries in the encoding — Distinct (or Union) restores set semantics.
func (r *Result) UnionAll(other *Result) (*Result, error) {
	return r.setOp("UnionAll", frep.UnionAllEnc, other)
}

// Except returns the set difference r − other over the same visible
// attributes, computed natively on the encoded representations.
func (r *Result) Except(other *Result) (*Result, error) {
	return r.setOp("Except", frep.ExceptEnc, other)
}

// Intersect returns the set intersection of two factorised results over the
// same visible attributes, computed natively on the encoded representations.
func (r *Result) Intersect(other *Result) (*Result, error) {
	return r.setOp("Intersect", frep.IntersectEnc, other)
}

// setOp is the shared guard path of the four set operations: same database
// (values are dictionary-encoded per DB, so cross-database operands would
// silently compare unrelated codes), unordered operands (order/limit apply
// to the final retrieval, not to intermediate algebra).
func (r *Result) setOp(name string, op func(a, b *frep.Enc) (*frep.Enc, error), other *Result) (*Result, error) {
	if other == nil {
		return nil, fmt.Errorf("fdb: %s with nil result", name)
	}
	if r.db != other.db {
		return nil, fmt.Errorf("fdb: %s across different DB instances: the dictionary encodings are incompatible", name)
	}
	if r.ordered() || other.ordered() {
		return nil, fmt.Errorf("fdb: %s of an ordered/limited result is not supported; apply OrderBy/Limit to the final query", name)
	}
	enc, err := op(r.enc, other.enc)
	if err != nil {
		return nil, err
	}
	return newResult(r.db, enc), nil
}

// ProjectTo projects the factorised result onto the given attributes.
func (r *Result) ProjectTo(attrs ...string) (*Result, error) {
	if r.ordered() {
		return nil, fmt.Errorf("fdb: ProjectTo on an ordered/limited result is not supported; apply OrderBy/Limit to the final query")
	}
	var as []relation.Attribute
	for _, a := range attrs {
		as = append(as, relation.Attribute(a))
	}
	enc, err := fplan.ApplyEnc(fplan.Project{Attrs: as}, r.enc)
	if err != nil {
		return nil, err
	}
	return newResult(r.db, enc), nil
}

// Table renders the enumerated result (up to limit rows) as an aligned
// table for display.
func (r *Result) Table(limit int) string {
	var b strings.Builder
	b.WriteString(strings.Join(r.Schema(), "\t"))
	b.WriteByte('\n')
	for _, row := range r.Rows(limit) {
		b.WriteString(strings.Join(row, "\t"))
		b.WriteByte('\n')
	}
	return b.String()
}

// SortedSchema returns the schema sorted alphabetically (stable rendering
// helper for tests).
func (r *Result) SortedSchema() []string {
	s := r.Schema()
	sort.Strings(s)
	return s
}

// AggResult is the result of an aggregation query (QueryAgg or
// Stmt.ExecAgg): one row per group, sorted by group key, with
// dictionary-decoded key accessors and typed aggregate values. A global
// aggregate (no GroupBy) has one row with an empty key — or zero rows if
// the query result is empty.
type AggResult struct {
	db      *DB
	groupBy []relation.Attribute
	specs   []frep.AggSpec
	rows    []frep.AggRow
}

// Len returns the number of groups.
func (r *AggResult) Len() int { return len(r.rows) }

// Schema lists the output columns: the group-by attributes followed by one
// label per aggregate ("count", "sum(Orders.qty)", …).
func (r *AggResult) Schema() []string {
	out := make([]string, 0, len(r.groupBy)+len(r.specs))
	for _, a := range r.groupBy {
		out = append(out, string(a))
	}
	for _, s := range r.specs {
		out = append(out, s.Label())
	}
	return out
}

// Key returns row i's group key, dictionary-decoded (empty for a global
// aggregate).
func (r *AggResult) Key(i int) []string {
	out := make([]string, len(r.rows[i].Key))
	for j, v := range r.rows[i].Key {
		out[j] = r.db.dict.Decode(v)
	}
	return out
}

// Value returns row i's value for the j-th Agg clause.
func (r *AggResult) Value(i, j int) int64 { return r.rows[i].Vals[j] }

// Int returns row i's value for the aggregate with the given label (as in
// Schema(), e.g. "count" or "min(Store.location)").
func (r *AggResult) Int(i int, label string) (int64, error) {
	for j, s := range r.specs {
		if s.Label() == label {
			return r.rows[i].Vals[j], nil
		}
	}
	return 0, fmt.Errorf("fdb: no aggregate %q in result (have %v)", label, r.Schema()[len(r.groupBy):])
}

// Group returns the row index of the given decoded group key, or -1.
// (Comparison is on decoded strings, so looking up an unknown key never
// grows the dictionary.)
func (r *AggResult) Group(key ...string) int {
	for i := range r.rows {
		k := r.Key(i)
		if len(k) != len(key) {
			continue
		}
		match := true
		for j := range key {
			if k[j] != key[j] {
				match = false
				break
			}
		}
		if match {
			return i
		}
	}
	return -1
}

// Rows materialises up to limit rows (limit <= 0: all) as decoded strings:
// group keys followed by aggregate values.
func (r *AggResult) Rows(limit int) [][]string {
	n := len(r.rows)
	if limit > 0 && limit < n {
		n = limit
	}
	out := make([][]string, 0, n)
	for i := 0; i < n; i++ {
		row := make([]string, 0, len(r.groupBy)+len(r.specs))
		row = append(row, r.Key(i)...)
		for _, v := range r.rows[i].Vals {
			row = append(row, strconv.FormatInt(v, 10))
		}
		out = append(out, row)
	}
	return out
}

// Table renders the result (up to limit rows) as a tab-separated table.
func (r *AggResult) Table(limit int) string {
	var b strings.Builder
	b.WriteString(strings.Join(r.Schema(), "\t"))
	b.WriteByte('\n')
	for _, row := range r.Rows(limit) {
		b.WriteString(strings.Join(row, "\t"))
		b.WriteByte('\n')
	}
	return b.String()
}
