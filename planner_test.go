package fdb

import (
	"sort"
	"strings"
	"testing"
	"time"
)

// skewDB builds a three-relation join whose greedy f-tree costs s=2 while
// the exhaustive optimum costs s=1 — the smallest known instance (drawn
// from the random-schema corpus) where the tiers genuinely disagree, so it
// exercises escalation and promotion for real.
func skewDB(t *testing.T) *DB {
	t.Helper()
	db := New()
	db.MustCreate("r1", "x3", "x6", "x8")
	db.MustCreate("r2", "x2", "x7", "x5")
	db.MustCreate("r3", "x1", "x4", "x9")
	for _, r := range [][3]int{{1, 1, 1}, {2, 2, 2}, {1, 2, 3}} {
		db.MustInsert("r1", r[0], r[1], r[2])
	}
	for _, r := range [][3]int{{10, 5, 7}, {11, 6, 8}} {
		db.MustInsert("r2", r[0], r[1], r[2])
	}
	for _, r := range [][3]int{{5, 1, 7}, {6, 2, 8}, {5, 2, 9}} {
		db.MustInsert("r3", r[0], r[1], r[2])
	}
	return db
}

func skewClauses(extra ...Clause) []Clause {
	cs := []Clause{
		From("r1", "r2", "r3"),
		Eq("r2.x5", "r3.x9"),
		Eq("r3.x1", "r2.x7"),
		Eq("r1.x6", "r1.x8"),
		Eq("r3.x4", "r1.x3"),
		Eq("r3.x4", "r1.x6"),
	}
	return append(cs, extra...)
}

// sortedRows renders rows with columns keyed by attribute name and the row
// set sorted: different f-trees of the same query enumerate rows AND
// columns in different orders, so this is the plan-independent comparison.
func sortedRows(t *testing.T, res *Result) []string {
	t.Helper()
	schema := res.Schema()
	var out []string
	for _, row := range res.Rows(0) {
		if len(row) != len(schema) {
			t.Fatalf("row width %d != schema width %d", len(row), len(schema))
		}
		cells := make([]string, len(row))
		for i, v := range row {
			cells[i] = string(schema[i]) + "=" + v
		}
		sort.Strings(cells)
		out = append(out, strings.Join(cells, "\t"))
	}
	sort.Strings(out)
	return out
}

// TestPlannerTiersDisagreeOnCostAgreeOnRows: the two planning tiers pick
// genuinely different trees on the skew query (cost 2 vs 1) and must still
// produce identical rows.
func TestPlannerTiersDisagreeOnCostAgreeOnRows(t *testing.T) {
	db := skewDB(t)
	db.SetPlannerMode(PlannerGreedy)
	gst, err := db.Prepare(skewClauses()...)
	if err != nil {
		t.Fatal(err)
	}
	db.SetPlannerMode(PlannerExhaustive)
	est, err := db.Prepare(skewClauses()...)
	if err != nil {
		t.Fatal(err)
	}
	if !gst.GreedyPlanned() || est.GreedyPlanned() {
		t.Fatalf("GreedyPlanned: greedy=%v exhaustive=%v", gst.GreedyPlanned(), est.GreedyPlanned())
	}
	if gst.Cost() <= est.Cost() {
		t.Fatalf("skew query lost its skew: greedy cost %v <= exhaustive %v", gst.Cost(), est.Cost())
	}
	gres, err := gst.Exec()
	if err != nil {
		t.Fatal(err)
	}
	eres, err := est.Exec()
	if err != nil {
		t.Fatal(err)
	}
	grows, erows := sortedRows(t, gres), sortedRows(t, eres)
	if len(grows) == 0 {
		t.Fatal("skew query returned no rows; the fixture is broken")
	}
	if strings.Join(grows, "\n") != strings.Join(erows, "\n") {
		t.Fatalf("planner tiers disagree on rows:\ngreedy:\n%s\nexhaustive:\n%s",
			strings.Join(grows, "\n"), strings.Join(erows, "\n"))
	}
	cs := db.CacheStats()
	if cs.GreedyPlans == 0 || cs.Escalations == 0 {
		t.Fatalf("counters missed the tiers: %+v", cs)
	}
}

// TestBudgetExhaustionNeverErrors is the regression test for the
// prepareSpec bug: a query wide enough to blow the exploration budget must
// fall back to the greedy tree, never surface opt.ErrBudget.
func TestBudgetExhaustionNeverErrors(t *testing.T) {
	for _, mode := range []PlannerMode{PlannerAuto, PlannerExhaustive} {
		db := skewDB(t)
		db.SetPlannerMode(mode)
		db.SetPlannerBudget(1)      // any search dies immediately
		db.SetPlannerThreshold(0.5) // auto: every plan escalates
		res, err := db.Query(skewClauses()...)
		if err != nil {
			t.Fatalf("mode %d: budget exhaustion escaped as a query error: %v", mode, err)
		}
		want := skewDB(t)
		wres, err := want.Query(skewClauses()...)
		if err != nil {
			t.Fatal(err)
		}
		if strings.Join(sortedRows(t, res), "\n") != strings.Join(sortedRows(t, wres), "\n") {
			t.Fatalf("mode %d: fallback plan changed the result", mode)
		}
		cs := db.CacheStats()
		if cs.BudgetFallbacks == 0 {
			t.Fatalf("mode %d: fallback not counted: %+v", mode, cs)
		}
		if cs.GreedyPlans == 0 {
			t.Fatalf("mode %d: greedy fallback plan not counted: %+v", mode, cs)
		}
	}
}

// TestBudgetExhaustionOrderedFallsBack: same regression for the
// order-constrained search (stmt.go used to discard its error wholesale).
// The ordered query must succeed, stay correctly ordered, and count its
// fallback.
func TestBudgetExhaustionOrderedFallsBack(t *testing.T) {
	db := skewDB(t)
	db.SetPlannerMode(PlannerExhaustive)
	db.SetPlannerBudget(1)
	res, err := db.Query(skewClauses(OrderBy("r2.x2"))...)
	if err != nil {
		t.Fatalf("ordered query under budget exhaustion: %v", err)
	}
	rows := res.Rows(0)
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	col := -1
	for i, a := range res.Schema() {
		if a == "r2.x2" {
			col = i
		}
	}
	if col < 0 {
		t.Fatalf("r2.x2 missing from schema %v", res.Schema())
	}
	for i := 1; i < len(rows); i++ {
		if rows[i-1][col] > rows[i][col] {
			t.Fatalf("rows out of order at %d: %v then %v", i, rows[i-1], rows[i])
		}
	}
	if cs := db.CacheStats(); cs.BudgetFallbacks == 0 {
		t.Fatalf("ordered fallback not counted: %+v", cs)
	}
}

// TestPlanPromotion: after enough plan-cache hits, the greedily planned
// skew statement is re-optimised in the background and its plan swapped to
// the strictly cheaper exhaustive tree — same rows, lower cost, counted.
func TestPlanPromotion(t *testing.T) {
	db := skewDB(t)
	db.SetPlannerPromoteAfter(2)
	before, err := db.Query(skewClauses()...)
	if err != nil {
		t.Fatal(err)
	}
	wantRows := strings.Join(sortedRows(t, before), "\n")
	// Two cache hits cross the threshold and launch the promotion.
	for i := 0; i < 2; i++ {
		if _, err := db.Query(skewClauses()...); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for db.CacheStats().Promotions == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("promotion never landed: %+v", db.CacheStats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	after, err := db.Query(skewClauses()...)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(sortedRows(t, after), "\n"); got != wantRows {
		t.Fatalf("promotion changed the result:\nbefore:\n%s\nafter:\n%s", wantRows, got)
	}
	// The promoted plan is the exhaustive optimum (cost 1 on this query)
	// and no longer a promotion candidate.
	st, err := db.PrepareCached(skewClauses()...)
	if err != nil {
		t.Fatal(err)
	}
	if st.GreedyPlanned() {
		t.Fatal("promoted statement still marked greedy")
	}
	if st.Cost() >= 2 {
		t.Fatalf("promoted cost %v, want the cheaper exhaustive tree", st.Cost())
	}
	if cs := db.CacheStats(); cs.Promotions != 1 {
		t.Fatalf("promotions = %d, want 1: %+v", cs.Promotions, cs)
	}
}

// TestPromotionSurvivesWrites: a promoted plan keeps refreshing its inputs
// incrementally like any other — writes after the swap are visible.
func TestPromotionSurvivesWrites(t *testing.T) {
	db := skewDB(t)
	db.SetPlannerPromoteAfter(1)
	if _, err := db.Query(skewClauses()...); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query(skewClauses()...); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for db.CacheStats().Promotions == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("promotion never landed: %+v", db.CacheStats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	before, err := db.Query(skewClauses()...)
	if err != nil {
		t.Fatal(err)
	}
	// A fresh joining row through every relation.
	db.MustInsert("r1", 3, 3, 3)
	db.MustInsert("r2", 12, 9, 4)
	db.MustInsert("r3", 9, 3, 4)
	after, err := db.Query(skewClauses()...)
	if err != nil {
		t.Fatal(err)
	}
	if after.Count() != before.Count()+1 {
		t.Fatalf("promoted statement missed the write: %d != %d+1", after.Count(), before.Count())
	}
}

// TestPlannerKnobsClamp: out-of-range knob values restore defaults or
// disable cleanly rather than wedging the planner.
func TestPlannerKnobsClamp(t *testing.T) {
	db := skewDB(t)
	db.SetPlannerBudget(-5)
	db.SetPlannerThreshold(-1)
	db.SetPlannerPromoteAfter(-3) // disables promotion
	if _, err := db.Query(skewClauses()...); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := db.Query(skewClauses()...); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(20 * time.Millisecond)
	if cs := db.CacheStats(); cs.Promotions != 0 {
		t.Fatalf("disabled promotion still fired: %+v", cs)
	}
	if got := db.PlannerMode(); got != PlannerAuto {
		t.Fatalf("default mode = %v", got)
	}
	db.SetPlannerMode(PlannerExhaustive)
	if got := db.PlannerMode(); got != PlannerExhaustive {
		t.Fatalf("mode = %v after SetPlannerMode", got)
	}
}
