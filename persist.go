package fdb

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/delta"
	"repro/internal/frep"
	"repro/internal/ftree"
	"repro/internal/relation"
	"repro/internal/store"
)

// SaveSnapshot writes the database to path in the zero-copy snapshot format
// (internal/store): the dictionary's code table, every relation's live
// tuples at one consistent version cut, and every plan-cache entry whose
// memoised encoded representation reflects exactly that cut — so a database
// reopened from the file serves those plans' first queries without any
// build. The write is atomic (temp file + rename) and the file records the
// global write version and each relation's delta-store version, which
// OpenSnapshotFile restores verbatim.
func (db *DB) SaveSnapshot(path string) error {
	db.mu.RLock()
	ver := db.ver
	ord := append([]string(nil), db.ord...)
	states := make(map[string]*delta.State, len(db.stores))
	for name, s := range db.stores {
		states[name] = s.State()
	}
	db.mu.RUnlock()

	set := &store.Set{Ver: ver, Dict: db.dict.Snapshot()}
	for _, name := range ord {
		st := states[name]
		live := st.Live()
		// Private slice header over the immutable live tuples: the writer
		// only reads, and the version chain is never mutated in place.
		rel := relation.New(live.Name, live.Schema)
		rel.Tuples = live.Tuples[:len(live.Tuples):len(live.Tuples)]
		set.Rels = append(set.Rels, store.Relation{Ver: st.Ver, Rel: rel})
	}
	entries := db.cache.entries()
	sort.Slice(entries, func(i, j int) bool { return entries[i].key < entries[j].key })
	for _, ce := range entries {
		if se, ok := persistableEnc(ce.key, ce.stmt, states); ok {
			set.Encs = append(set.Encs, se)
		}
	}
	return store.Write(path, set)
}

// persistableEnc decides whether a cached statement's memoised encoding can
// ride along in the snapshot: the statement must be parameter-free and
// unpinned, the encoding built, and every input version equal to the
// version the snapshot is cutting — otherwise the enc describes data the
// file does not contain.
func persistableEnc(key string, st *Stmt, states map[string]*delta.State) (store.Enc, bool) {
	if st == nil || key == "" || len(st.psels) > 0 || st.snap != nil {
		return store.Enc{}, false
	}
	p := st.plan.Load()
	if p == nil {
		return store.Enc{}, false
	}
	d := p.data.Load()
	if d == nil || len(d.vers) != len(p.inputs) {
		return store.Enc{}, false
	}
	d.mu.Lock()
	enc := d.enc
	d.mu.Unlock()
	if enc == nil {
		return store.Enc{}, false
	}
	inputs := make([]store.Input, len(p.inputs))
	for i, in := range p.inputs {
		s, ok := states[in.store.Name]
		if !ok || s.Ver != d.vers[i] {
			return store.Enc{}, false
		}
		inputs[i] = store.Input{Name: in.store.Name, Ver: d.vers[i]}
	}
	return store.Enc{Fingerprint: key, Inputs: inputs, Enc: enc}, true
}

// OpenSnapshotFile opens a database from a snapshot file written by
// SaveSnapshot. The file is memory-mapped when the platform allows (read
// into the heap otherwise): relation tuples and any snapshot-carried
// encodings are zero-copy views into the mapping, so opening costs
// validation — header, checksums, structural invariants — instead of a
// parse and build, and a carried encoding serves its plan's first query
// with no build at all. The mapping stays referenced for the lifetime of
// the returned database; the database is fully writable — the first
// mutation simply layers delta batches over the mapped base like any other
// bulk-loaded relation.
func OpenSnapshotFile(path string) (*DB, error) {
	f, err := store.Open(path)
	if err != nil {
		return nil, err
	}
	db, err := newFromStore(f)
	if err != nil {
		_ = f.Close()
		return nil, err
	}
	return db, nil
}

// newFromStore builds a DB over an opened store.File, cross-checking the
// file's version bookkeeping before adopting anything.
func newFromStore(f *store.File) (*DB, error) {
	db := New()
	dict, err := relation.NewDictFromStrings(f.Dict)
	if err != nil {
		return nil, fmt.Errorf("fdb: open snapshot: %w", err)
	}
	db.dict = dict
	for _, sr := range f.Rels {
		if sr.Ver > f.Ver {
			return nil, fmt.Errorf("fdb: open snapshot: relation %q version %d exceeds database version %d",
				sr.Rel.Name, sr.Ver, f.Ver)
		}
		db.stores[sr.Rel.Name] = delta.FromRelation(sr.Rel, sr.Ver)
		db.ord = append(db.ord, sr.Rel.Name)
	}
	db.ver = f.Ver
	if len(f.Encs) > 0 {
		db.adopted = make(map[string]*adoptedEnc, len(f.Encs))
		for _, se := range f.Encs {
			for _, in := range se.Inputs {
				s, ok := db.stores[in.Name]
				if !ok || s.State().Ver != in.Ver {
					return nil, fmt.Errorf("fdb: open snapshot: enc %q input %s@%d does not match its stored relation",
						se.Fingerprint, in.Name, in.Ver)
				}
			}
			db.adopted[se.Fingerprint] = &adoptedEnc{inputs: se.Inputs, enc: se.Enc}
		}
	}
	db.backing = f
	return db, nil
}

// adoptSaved returns a snapshot-carried encoding for this statement at this
// data version, or nil to fall back to a build. Adoption demands exact
// agreement — fingerprint, input names and versions, tree shape and markers
// — because the arena is wired to the stored tree's pre-order; any mismatch
// means the plan must build normally. The returned enc is a view: its arena
// stays in the snapshot file.
func (st *Stmt) adoptSaved(p *stmtPlan, d *stmtData) *frep.Enc {
	if st.fp == "" || st.snap != nil || len(st.psels) > 0 {
		return nil
	}
	ae := st.db.adopted[st.fp]
	if ae == nil || len(ae.inputs) != len(p.inputs) || len(d.vers) != len(p.inputs) {
		return nil
	}
	for i := range p.inputs {
		if ae.inputs[i].Name != p.inputs[i].store.Name || ae.inputs[i].Ver != d.vers[i] {
			return nil
		}
	}
	if !treesAdoptable(ae.enc.Tree, p.tree) {
		return nil
	}
	return ae.enc.ReTree(p.tree.Clone())
}

// treesAdoptable reports whether an encoding over tree a may be viewed over
// tree b: identical up to sibling order including hidden/const markers
// (Canonical) AND laid out node-for-node in the same pre-order (ReTree's
// contract — the arena's span list is pre-order).
func treesAdoptable(a, b *ftree.T) bool {
	if a.Canonical() != b.Canonical() {
		return false
	}
	return preorderSig(a) == preorderSig(b)
}

// preorderSig renders the exact pre-order layout of a forest.
func preorderSig(t *ftree.T) string {
	var b strings.Builder
	var walk func(n *ftree.Node)
	walk = func(n *ftree.Node) {
		b.WriteByte('(')
		for i, a := range n.Attrs {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(string(a))
		}
		for _, c := range n.Children {
			walk(c)
		}
		b.WriteByte(')')
	}
	for _, r := range t.Roots {
		walk(r)
	}
	return b.String()
}
