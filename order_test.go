package fdb_test

import (
	"reflect"
	"strings"
	"sync"
	"testing"

	fdb "repro"
)

// orderDB is the two-relation join used throughout the ordering tests.
func orderDB(t *testing.T) *fdb.DB {
	t.Helper()
	db := fdb.New()
	db.MustCreate("R", "a", "b")
	db.MustCreate("S", "b", "c")
	for _, r := range [][2]int{{3, 1}, {1, 2}, {2, 1}, {1, 1}} {
		db.MustInsert("R", r[0], r[1])
	}
	for _, s := range [][2]int{{1, 9}, {1, 8}, {2, 7}} {
		db.MustInsert("S", s[0], s[1])
	}
	return db
}

func rows(t *testing.T, res *fdb.Result) [][]string {
	t.Helper()
	return res.Rows(0)
}

func TestOrderByStreamsOnRootKey(t *testing.T) {
	db := orderDB(t)
	st, err := db.Prepare(fdb.From("R", "S"), fdb.Eq("R.b", "S.b"),
		fdb.OrderBy(fdb.Desc("S.b"), "S.c"))
	if err != nil {
		t.Fatal(err)
	}
	if !st.OrderStreamable() {
		t.Fatal("join-class key should stream off the optimal tree")
	}
	res, err := st.Exec()
	if err != nil {
		t.Fatal(err)
	}
	got := rows(t, res)
	want := [][]string{
		{"2", "2", "7", "1"},
		{"1", "1", "8", "1"}, {"1", "1", "8", "2"}, {"1", "1", "8", "3"},
		{"1", "1", "9", "1"}, {"1", "1", "9", "2"}, {"1", "1", "9", "3"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ordered rows = %v, want %v", got, want)
	}
}

func TestOrderByHeapFallback(t *testing.T) {
	db := orderDB(t)
	st, err := db.Prepare(fdb.From("R", "S"), fdb.Eq("R.b", "S.b"), fdb.OrderBy("R.a"))
	if err != nil {
		t.Fatal(err)
	}
	if st.OrderStreamable() {
		t.Fatal("a below the join class: streaming would need a costlier tree, expected fallback")
	}
	res, err := st.Exec()
	if err != nil {
		t.Fatal(err)
	}
	got := rows(t, res)
	// Sorted by R.a, ties by the remaining columns ascending.
	prev := ""
	for _, r := range got {
		key := r[len(r)-2] // R.a column position depends on the tree; find it via schema
		_ = key
		_ = prev
	}
	sch := res.Schema()
	ai := -1
	for i, a := range sch {
		if a == "R.a" {
			ai = i
		}
	}
	if ai < 0 {
		t.Fatalf("R.a not in schema %v", sch)
	}
	for i := 1; i < len(got); i++ {
		if got[i-1][ai] > got[i][ai] {
			t.Fatalf("rows not sorted by R.a: %v", got)
		}
	}
	if len(got) != 7 {
		t.Fatalf("got %d rows, want 7", len(got))
	}
}

func TestLimitOffsetCountAndRows(t *testing.T) {
	db := orderDB(t)
	res, err := db.Query(fdb.From("R", "S"), fdb.Eq("R.b", "S.b"),
		fdb.OrderBy(fdb.Desc("S.c")), fdb.Offset(1), fdb.Limit(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Count() != 3 {
		t.Fatalf("Count() = %d, want 3", res.Count())
	}
	if res.FlatSize() != 3*4 {
		t.Fatalf("FlatSize() = %d, want 12", res.FlatSize())
	}
	got := rows(t, res)
	if len(got) != 3 {
		t.Fatalf("got %d rows, want 3", len(got))
	}
	// Limit past the end clips; Limit(0) empties.
	res, err = db.Query(fdb.From("R", "S"), fdb.Eq("R.b", "S.b"), fdb.Limit(100))
	if err != nil {
		t.Fatal(err)
	}
	if res.Count() != 7 || len(rows(t, res)) != 7 {
		t.Fatalf("Limit(100): count %d", res.Count())
	}
	res, err = db.Query(fdb.From("R", "S"), fdb.Eq("R.b", "S.b"), fdb.Limit(0))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Empty() || res.Count() != 0 || len(rows(t, res)) != 0 {
		t.Fatal("Limit(0) must be empty")
	}
	res, err = db.Query(fdb.From("R", "S"), fdb.Eq("R.b", "S.b"), fdb.Offset(100))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Empty() || res.Count() != 0 {
		t.Fatal("Offset past the end must be empty")
	}
}

// Dictionary-encoded attributes order by decoded string, not insertion code:
// the ordered iterator must walk the per-node sort permutation.
func TestOrderByDictDecodedOrder(t *testing.T) {
	db := fdb.New()
	db.MustCreate("P", "name", "qty")
	// Insertion order differs from both alphabetical and reverse order.
	db.MustInsert("P", "melon", 3)
	db.MustInsert("P", "apple", 2)
	db.MustInsert("P", "zucchini", 1)
	db.MustInsert("P", "banana", 5)

	res, err := db.Query(fdb.From("P"), fdb.OrderBy("P.name"))
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	res.Each(func(row []string) bool {
		names = append(names, row[0])
		return true
	})
	want := []string{"apple", "banana", "melon", "zucchini"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("names = %v, want %v", names, want)
	}
	res, err = db.Query(fdb.From("P"), fdb.OrderBy(fdb.Desc("P.name")), fdb.Limit(2))
	if err != nil {
		t.Fatal(err)
	}
	names = nil
	res.Each(func(row []string) bool {
		names = append(names, row[0])
		return true
	})
	if !reflect.DeepEqual(names, []string{"zucchini", "melon"}) {
		t.Fatalf("desc names = %v", names)
	}
}

func TestDistinctWithProjection(t *testing.T) {
	db := orderDB(t)
	res, err := db.Query(fdb.From("R", "S"), fdb.Eq("R.b", "S.b"),
		fdb.Project("S.b"), fdb.Distinct(), fdb.OrderBy(fdb.Desc("S.b")))
	if err != nil {
		t.Fatal(err)
	}
	got := rows(t, res)
	if !reflect.DeepEqual(got, [][]string{{"2"}, {"1"}}) {
		t.Fatalf("distinct projected rows = %v", got)
	}
	// Distinct is idempotent with the engine's set semantics: the same query
	// without it returns the same rows.
	res2, err := db.Query(fdb.From("R", "S"), fdb.Eq("R.b", "S.b"),
		fdb.Project("S.b"), fdb.OrderBy(fdb.Desc("S.b")))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rows(t, res2), got) {
		t.Fatal("projection is not set-semantic without Distinct")
	}
}

func TestOrderClauseErrors(t *testing.T) {
	db := orderDB(t)
	for name, clauses := range map[string][]fdb.Clause{
		"negative limit":     {fdb.From("R"), fdb.Limit(-1)},
		"negative offset":    {fdb.From("R"), fdb.Offset(-2)},
		"double limit":       {fdb.From("R"), fdb.Limit(1), fdb.Limit(2)},
		"double distinct":    {fdb.From("R"), fdb.Distinct(), fdb.Distinct()},
		"empty orderby":      {fdb.From("R"), fdb.OrderBy()},
		"bad key type":       {fdb.From("R"), fdb.OrderBy(42)},
		"unknown order attr": {fdb.From("R"), fdb.OrderBy("R.z")},
		"projected-away key": {fdb.From("R"), fdb.Project("R.a"), fdb.OrderBy("R.b")},
		"order with agg":     {fdb.From("R"), fdb.Agg(fdb.Count, ""), fdb.OrderBy("R.a")},
		"limit with agg":     {fdb.From("R"), fdb.Agg(fdb.Count, ""), fdb.Limit(1)},
	} {
		if _, err := db.Query(clauses...); err == nil {
			if _, err := db.QueryAgg(clauses...); err == nil {
				t.Errorf("%s: no error", name)
			}
		}
	}
	res, err := db.Query(fdb.From("R"), fdb.OrderBy("R.a"), fdb.Limit(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.Where(fdb.Cmp("R.a", fdb.EQ, 1)); err == nil || !strings.Contains(err.Error(), "ordered") {
		t.Fatalf("Where on ordered result: %v", err)
	}
	if _, err := res.ProjectTo("R.a"); err == nil {
		t.Fatal("ProjectTo on ordered result must fail")
	}
	plain, err := db.Query(fdb.From("S"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plain.Join(res); err == nil {
		t.Fatal("Join with ordered result must fail")
	}
	if _, err := plain.Where(fdb.OrderBy("S.b")); err == nil {
		t.Fatal("OrderBy inside Where must fail")
	}
}

// Plan-cache identity: order/limit/offset/distinct are part of the
// fingerprint, so variants never alias each other's cached plans.
func TestOrderPlanCacheIdentity(t *testing.T) {
	db := orderDB(t)
	q := func(extra ...fdb.Clause) int64 {
		clauses := append([]fdb.Clause{fdb.From("R", "S"), fdb.Eq("R.b", "S.b")}, extra...)
		res, err := db.Query(clauses...)
		if err != nil {
			t.Fatal(err)
		}
		return res.Count()
	}
	if n := q(); n != 7 {
		t.Fatalf("base count %d", n)
	}
	if n := q(fdb.Limit(2)); n != 2 {
		t.Fatalf("limit-2 count %d (cached plan aliased?)", n)
	}
	if n := q(fdb.Limit(5)); n != 5 {
		t.Fatalf("limit-5 count %d (cached plan aliased?)", n)
	}
	if n := q(fdb.OrderBy("S.c"), fdb.Offset(6)); n != 1 {
		t.Fatalf("offset count %d", n)
	}
	if n := q(fdb.Distinct()); n != 7 {
		t.Fatalf("distinct count %d", n)
	}
	// Repeats hit the cache and still honour their own clipping.
	before := db.CacheStats()
	if n := q(fdb.Limit(2)); n != 2 {
		t.Fatal("cached limit-2 plan broken")
	}
	after := db.CacheStats()
	if after.Hits != before.Hits+1 {
		t.Fatalf("expected a cache hit, stats %+v -> %+v", before, after)
	}
}

// Ordered prepared statements are safe for concurrent Exec+retrieval.
func TestOrderedExecConcurrent(t *testing.T) {
	db := orderDB(t)
	st, err := db.Prepare(fdb.From("R", "S"), fdb.Eq("R.b", "S.b"),
		fdb.OrderBy(fdb.Desc("S.b"), "S.c"), fdb.Limit(4))
	if err != nil {
		t.Fatal(err)
	}
	var want [][]string
	{
		res, err := st.Exec()
		if err != nil {
			t.Fatal(err)
		}
		want = res.Rows(0)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := st.Exec()
			if err != nil {
				errs <- err
				return
			}
			if !reflect.DeepEqual(res.Rows(0), want) {
				errs <- errDiverged
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

var errDiverged = &divergedError{}

type divergedError struct{}

func (*divergedError) Error() string { return "concurrent ordered Exec diverged" }
