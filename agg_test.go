package fdb

import (
	"strings"
	"testing"

	"repro/internal/frep"
	"repro/internal/relation"
)

// q1Clauses is the SPJ part of the paper's Q1 join over the grocery data.
func q1Clauses() []Clause {
	return []Clause{
		From("Orders", "Store", "Disp"),
		Eq("Orders.item", "Store.item"),
		Eq("Store.location", "Disp.location"),
	}
}

// foldOver computes the same aggregates by enumerating the flat result of
// the SPJ query — the reference the factorised pass must match.
func foldOver(t *testing.T, res *Result, groupBy []string, specs []frep.AggSpec) map[string][]int64 {
	t.Helper()
	rep := res.Rep()
	schema := rep.Schema()
	pos := map[relation.Attribute]int{}
	for i, a := range schema {
		pos[a] = i
	}
	type state struct {
		cnt  int64
		sum  []int64
		m    []int64
		mSet []bool
		dist []map[relation.Value]struct{}
	}
	groups := map[string]*state{}
	rep.Enumerate(func(tp relation.Tuple) bool {
		var kb strings.Builder
		for _, a := range groupBy {
			kb.WriteString(res.db.dict.Decode(tp[pos[relation.Attribute(a)]]))
			kb.WriteByte('\x00')
		}
		k := kb.String()
		s, ok := groups[k]
		if !ok {
			s = &state{sum: make([]int64, len(specs)), m: make([]int64, len(specs)),
				mSet: make([]bool, len(specs)), dist: make([]map[relation.Value]struct{}, len(specs))}
			groups[k] = s
		}
		s.cnt++
		for i, sp := range specs {
			if sp.Fn == frep.AggCount {
				continue
			}
			v := tp[pos[sp.Attr]]
			switch sp.Fn {
			case frep.AggSum:
				s.sum[i] += int64(v)
			case frep.AggMin:
				if !s.mSet[i] || int64(v) < s.m[i] {
					s.m[i], s.mSet[i] = int64(v), true
				}
			case frep.AggMax:
				if !s.mSet[i] || int64(v) > s.m[i] {
					s.m[i], s.mSet[i] = int64(v), true
				}
			case frep.AggCountDistinct:
				if s.dist[i] == nil {
					s.dist[i] = map[relation.Value]struct{}{}
				}
				s.dist[i][v] = struct{}{}
			}
		}
		return true
	})
	out := map[string][]int64{}
	for k, s := range groups {
		vals := make([]int64, len(specs))
		for i, sp := range specs {
			switch sp.Fn {
			case frep.AggCount:
				vals[i] = s.cnt
			case frep.AggSum:
				vals[i] = s.sum[i]
			case frep.AggMin, frep.AggMax:
				vals[i] = s.m[i]
			case frep.AggCountDistinct:
				vals[i] = int64(len(s.dist[i]))
			}
		}
		out[k] = vals
	}
	return out
}

func TestQueryAggMatchesEnumerateFold(t *testing.T) {
	db := grocery(t)
	specs := []frep.AggSpec{
		{Fn: frep.AggCount},
		{Fn: frep.AggSum, Attr: "Orders.oid"},
		{Fn: frep.AggMin, Attr: "Orders.oid"},
		{Fn: frep.AggMax, Attr: "Orders.oid"},
		{Fn: frep.AggCountDistinct, Attr: "Orders.item"},
	}
	groupings := [][]string{nil, {"Store.location"}, {"Store.location", "Orders.item"}, {"Disp.dispatcher"}}
	for _, groupBy := range groupings {
		clauses := append(q1Clauses(),
			GroupBy(groupBy...),
			Agg(Count, ""),
			Agg(Sum, "Orders.oid"),
			Agg(Min, "Orders.oid"),
			Agg(Max, "Orders.oid"),
			Agg(CountDistinct, "Orders.item"))
		ar, err := db.QueryAgg(clauses...)
		if err != nil {
			t.Fatalf("groupBy %v: %v", groupBy, err)
		}
		res, err := db.Query(q1Clauses()...)
		if err != nil {
			t.Fatal(err)
		}
		want := foldOver(t, res, groupBy, specs)
		if ar.Len() != len(want) {
			t.Fatalf("groupBy %v: %d groups, want %d\n%s", groupBy, ar.Len(), len(want), ar.Table(0))
		}
		for i := 0; i < ar.Len(); i++ {
			var kb strings.Builder
			for _, k := range ar.Key(i) {
				kb.WriteString(k)
				kb.WriteByte('\x00')
			}
			vals, ok := want[kb.String()]
			if !ok {
				t.Fatalf("groupBy %v: unexpected group %v", groupBy, ar.Key(i))
			}
			for j := range vals {
				if ar.Value(i, j) != vals[j] {
					t.Fatalf("groupBy %v group %v agg %d: got %d, want %d",
						groupBy, ar.Key(i), j, ar.Value(i, j), vals[j])
				}
			}
		}
	}
}

func TestPreparedAggWithParam(t *testing.T) {
	db := grocery(t)
	st, err := db.Prepare(append(q1Clauses(),
		Cmp("Orders.oid", NE, Param("skip")),
		GroupBy("Store.location"),
		Agg(Count, ""),
		Agg(CountDistinct, "Orders.item"))...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Exec(Arg("skip", "02")); err == nil {
		t.Fatal("Exec on aggregate statement: want error")
	}
	ar, err := st.ExecAgg(Arg("skip", "02"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(append(q1Clauses(), Cmp("Orders.oid", NE, "02"))...)
	if err != nil {
		t.Fatal(err)
	}
	want := foldOver(t, res, []string{"Store.location"}, []frep.AggSpec{
		{Fn: frep.AggCount}, {Fn: frep.AggCountDistinct, Attr: "Orders.item"}})
	if ar.Len() != len(want) {
		t.Fatalf("got %d groups, want %d", ar.Len(), len(want))
	}
	for i := 0; i < ar.Len(); i++ {
		vals := want[ar.Key(i)[0]+"\x00"]
		if vals == nil || ar.Value(i, 0) != vals[0] || ar.Value(i, 1) != vals[1] {
			t.Fatalf("group %v: got (%d,%d), want %v", ar.Key(i), ar.Value(i, 0), ar.Value(i, 1), vals)
		}
	}
	// Rebinding the parameter reuses the compiled plan with new constants.
	ar2, err := st.ExecAgg(Arg("skip", "01"))
	if err != nil {
		t.Fatal(err)
	}
	if ar2.Len() == 0 || ar2.Len() == ar.Len() {
		// The two bindings filter different oid sets; at minimum the counts
		// must differ somewhere.
		same := ar2.Len() == ar.Len()
		if same {
			for i := 0; same && i < ar.Len(); i++ {
				if ar.Value(i, 0) != ar2.Value(i, 0) {
					same = false
				}
			}
		}
		if same {
			t.Fatal("different parameter bindings produced identical aggregates")
		}
	}
}

func TestAggResultAccessors(t *testing.T) {
	db := grocery(t)
	ar, err := db.QueryAgg(append(q1Clauses(),
		GroupBy("Store.location"), Agg(Count, ""), Agg(CountDistinct, "Orders.item"))...)
	if err != nil {
		t.Fatal(err)
	}
	wantSchema := []string{"Store.location", "count", "count_distinct(Orders.item)"}
	if got := ar.Schema(); !equalStrings(got, wantSchema) {
		t.Fatalf("Schema: got %v, want %v", got, wantSchema)
	}
	if i := ar.Group("Istanbul"); i < 0 {
		t.Fatal("Group(Istanbul): not found")
	} else {
		if _, err := ar.Int(i, "count"); err != nil {
			t.Fatal(err)
		}
		if _, err := ar.Int(i, "nope"); err == nil {
			t.Fatal("Int with unknown label: want error")
		}
	}
	if ar.Group("Narnia") != -1 {
		t.Fatal("Group(Narnia): want -1")
	}
	rows := ar.Rows(0)
	if len(rows) != ar.Len() {
		t.Fatalf("Rows: got %d, want %d", len(rows), ar.Len())
	}
	// Keys come back sorted by encoded value; Rows(1) truncates.
	if len(ar.Rows(1)) != 1 {
		t.Fatal("Rows(1): want one row")
	}
	if !strings.Contains(ar.Table(0), "count_distinct") {
		t.Fatalf("Table missing header:\n%s", ar.Table(0))
	}
}

func TestAggErrors(t *testing.T) {
	db := grocery(t)
	cases := []struct {
		name    string
		clauses []Clause
	}{
		{"groupby without agg", append(q1Clauses(), GroupBy("Store.location"))},
		{"project with agg", append(q1Clauses(), Project("Orders.oid"), Agg(Count, ""))},
		{"unknown group attr", append(q1Clauses(), GroupBy("Nope.x"), Agg(Count, ""))},
		{"unknown agg attr", append(q1Clauses(), Agg(Sum, "Nope.x"))},
		{"agg needs attr", append(q1Clauses(), Agg(Sum, ""))},
		{"count takes no attr", append(q1Clauses(), Agg(Count, "Orders.oid"))},
	}
	for _, c := range cases {
		if _, err := db.QueryAgg(c.clauses...); err == nil {
			t.Errorf("%s: want error", c.name)
		}
	}
	// Duplicate GroupBy attributes must fail at Prepare, not first ExecAgg.
	if _, err := db.Prepare(append(q1Clauses(),
		GroupBy("Store.location", "Store.location"), Agg(Count, ""))...); err == nil {
		t.Error("duplicate group-by attribute: want Prepare error")
	}
	// GroupBy without Agg must error even when the plain query's plan is
	// already cached (the fingerprint of an agg-free spec ignores groupBy).
	if _, err := db.Query(q1Clauses()...); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query(append(q1Clauses(), GroupBy("Store.location"))...); err == nil {
		t.Error("GroupBy without Agg on warm cache: want error")
	}
	if _, err := db.QueryAgg(q1Clauses()...); err == nil {
		t.Error("QueryAgg without Agg: want error")
	}
	if _, err := db.Query(append(q1Clauses(), Agg(Count, ""))...); err == nil {
		t.Error("Query with Agg: want error")
	}
	res, err := db.Query(q1Clauses()...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.Where(Agg(Count, "")); err == nil {
		t.Error("Agg in Where: want error")
	}
	if _, err := res.Where(GroupBy("Store.location")); err == nil {
		t.Error("GroupBy in Where: want error")
	}
	st, err := db.Prepare(q1Clauses()...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.ExecAgg(); err == nil {
		t.Error("ExecAgg on plain statement: want error")
	}
}

func TestQueryAggPlanCache(t *testing.T) {
	db := grocery(t)
	clauses := append(q1Clauses(), GroupBy("Store.location"), Agg(Count, ""))
	if _, err := db.QueryAgg(clauses...); err != nil {
		t.Fatal(err)
	}
	// The plain SPJ query must not collide with the aggregate plan.
	if _, err := db.Query(q1Clauses()...); err != nil {
		t.Fatal(err)
	}
	s0 := db.CacheStats()
	ar, err := db.QueryAgg(clauses...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(q1Clauses()...)
	if err != nil {
		t.Fatal(err)
	}
	s1 := db.CacheStats()
	if s1.Hits != s0.Hits+2 {
		t.Fatalf("want 2 cache hits, got %d -> %d", s0.Hits, s1.Hits)
	}
	// And the aggregate totals must agree with the enumerated result.
	if got, _ := ar.Int(0, "count"); ar.Len() == 0 || got <= 0 {
		t.Fatalf("cached aggregate result looks wrong:\n%s", ar.Table(0))
	}
	var total int64
	for i := 0; i < ar.Len(); i++ {
		v, _ := ar.Int(i, "count")
		total += v
	}
	if total != res.Count() {
		t.Fatalf("grouped counts sum to %d, result has %d tuples", total, res.Count())
	}
	// An insert invalidates the cached aggregate plan.
	db.MustInsert("Orders", "09", "Milk")
	ar2, err := db.QueryAgg(clauses...)
	if err != nil {
		t.Fatal(err)
	}
	var total2 int64
	for i := 0; i < ar2.Len(); i++ {
		v, _ := ar2.Int(i, "count")
		total2 += v
	}
	if total2 <= total {
		t.Fatalf("insert not visible to aggregate query: %d -> %d", total, total2)
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
