package fdb

import (
	"strings"
	"testing"
)

func seedPC(t *testing.T) *DB {
	t.Helper()
	db := New()
	db.MustCreate("R", "a", "b")
	for i := 0; i < 50; i++ {
		db.MustInsert("R", i%10, i%7)
	}
	db.MustCreate("S", "b", "c")
	for i := 0; i < 30; i++ {
		db.MustInsert("S", i%7, i%5)
	}
	return db
}

// TestPrepareCachedSharesPlans: identical shapes share one *Stmt through
// the plan cache, parameter placeholders included; different shapes don't.
func TestPrepareCachedSharesPlans(t *testing.T) {
	db := seedPC(t)
	shape := []Clause{From("R", "S"), Eq("R.b", "S.b"), Cmp("R.a", EQ, Param("x"))}
	st1, err := db.PrepareCached(shape...)
	if err != nil {
		t.Fatal(err)
	}
	before := db.CacheStats()
	st2, err := db.PrepareCached(shape...)
	if err != nil {
		t.Fatal(err)
	}
	if st1 != st2 {
		t.Fatal("same shape compiled twice")
	}
	if after := db.CacheStats(); after.Hits != before.Hits+1 {
		t.Fatalf("no cache hit: %+v -> %+v", before, after)
	}
	// A different placeholder name is a different plan identity.
	st3, err := db.PrepareCached(From("R", "S"), Eq("R.b", "S.b"), Cmp("R.a", EQ, Param("y")))
	if err != nil {
		t.Fatal(err)
	}
	if st3 == st1 {
		t.Fatal("different parameter name aliased to the same cached plan")
	}
	// The shared statement still executes with per-call bindings.
	r1, err := st1.Exec(Arg("x", 3))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := st2.Exec(Arg("x", 4))
	if err != nil {
		t.Fatal(err)
	}
	for want, got := range map[int]*Result{3: r1, 4: r2} {
		ref, err := db.Query(From("R", "S"), Eq("R.b", "S.b"), Cmp("R.a", EQ, want))
		if err != nil {
			t.Fatal(err)
		}
		if got.Count() == 0 || got.Count() != ref.Count() {
			t.Fatalf("binding x=%d returned %d tuples, want %d", want, got.Count(), ref.Count())
		}
	}
	// Invalid shapes are rejected before touching the cache.
	if _, err := db.PrepareCached(From("R"), GroupBy("R.a")); err == nil {
		t.Fatal("GroupBy without Agg accepted")
	}
}

// TestSnapshotBind: a cached statement pinned to a snapshot reads the
// pinned version while the original keeps reading live data.
func TestSnapshotBind(t *testing.T) {
	db := seedPC(t)
	st, err := db.PrepareCached(From("R"), Cmp("R.a", EQ, Param("x")))
	if err != nil {
		t.Fatal(err)
	}
	snap := db.Snapshot()
	pinned, err := snap.Bind(st)
	if err != nil {
		t.Fatal(err)
	}
	baseRes, err := pinned.Exec(Arg("x", 3))
	if err != nil {
		t.Fatal(err)
	}
	base := baseRes.Count()
	db.MustInsert("R", 3, 999)
	liveRes, err := st.Exec(Arg("x", 3))
	if err != nil {
		t.Fatal(err)
	}
	if liveRes.Count() != base+1 {
		t.Fatalf("live statement missed the write: %d, want %d", liveRes.Count(), base+1)
	}
	againRes, err := pinned.Exec(Arg("x", 3))
	if err != nil {
		t.Fatal(err)
	}
	if againRes.Count() != base {
		t.Fatalf("pinned statement saw the write: %d, want %d", againRes.Count(), base)
	}

	// Binding an already-pinned statement is an error.
	if _, err := snap.Bind(pinned); err == nil || !strings.Contains(err.Error(), "already pinned") {
		t.Fatalf("double pin: %v", err)
	}
	// Binding a statement from another database is an error.
	other := seedPC(t)
	stOther, err := other.PrepareCached(From("R"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := snap.Bind(stOther); err == nil || !strings.Contains(err.Error(), "different DB") {
		t.Fatalf("cross-database bind: %v", err)
	}
	// A relation created after the snapshot is not in the pinned cut.
	db.MustCreate("Late", "z")
	db.MustInsert("Late", 1)
	stLate, err := db.PrepareCached(From("Late"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := snap.Bind(stLate); err == nil || !strings.Contains(err.Error(), "created after") {
		t.Fatalf("bind of a post-snapshot relation: %v", err)
	}
	// Nil statements fail loudly.
	if _, err := snap.Bind(nil); err == nil {
		t.Fatal("nil bind accepted")
	}
	// A closed snapshot rejects new binds and fails pinned reads.
	snap.Close()
	if _, err := snap.Bind(st); err == nil {
		t.Fatal("bind on a closed snapshot accepted")
	}
	if _, err := pinned.Exec(Arg("x", 3)); err == nil {
		t.Fatal("pinned exec after snapshot close succeeded")
	}
	// The live statement is untouched by the snapshot lifecycle.
	if _, err := st.Exec(Arg("x", 3)); err != nil {
		t.Fatalf("live statement broken after snapshot close: %v", err)
	}
}

// TestSnapshotBindAggregate: pinned aggregates follow the same rules.
func TestSnapshotBindAggregate(t *testing.T) {
	db := seedPC(t)
	st, err := db.PrepareCached(From("R", "S"), Eq("R.b", "S.b"), GroupBy("R.a"), Agg(Count, ""))
	if err != nil {
		t.Fatal(err)
	}
	snap := db.Snapshot()
	defer snap.Close()
	pinned, err := snap.Bind(st)
	if err != nil {
		t.Fatal(err)
	}
	before, err := pinned.ExecAgg()
	if err != nil {
		t.Fatal(err)
	}
	db.MustInsert("R", 99, 1)
	after, err := pinned.ExecAgg()
	if err != nil {
		t.Fatal(err)
	}
	b, a := before.Rows(0), after.Rows(0)
	if len(b) != len(a) {
		t.Fatalf("pinned aggregate moved: %d groups then %d", len(b), len(a))
	}
	liveAfter, err := st.ExecAgg()
	if err != nil {
		t.Fatal(err)
	}
	if len(liveAfter.Rows(0)) != len(b)+1 {
		t.Fatalf("live aggregate missed the new group: %d, want %d", len(liveAfter.Rows(0)), len(b)+1)
	}
}
