package fdb

import (
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/delta"
)

// errSnapshotClosed is returned when a snapshot-bound statement runs after
// the snapshot was closed — reading a released version is a caller bug, and
// it fails loudly rather than silently serving whatever is current.
var errSnapshotClosed = errors.New("fdb: snapshot closed: statement reads a released version")

// Snapshot is a consistent read-only view of the database at one write
// version. It pins the immutable state of every relation as of the pin
// (including tuple storage and any arena a pinned statement decodes from),
// so queries against it are repeatable bit-for-bit regardless of concurrent
// Insert/Delete/Upsert or Compact calls. Snapshots are cheap — a pointer
// per relation, no copying — and safe for concurrent use.
//
// Close releases the pin. Statements prepared from the snapshot fail with
// an error after Close; results already executed stay valid (they own their
// representation).
type Snapshot struct {
	db     *DB
	ver    uint64
	states map[string]*delta.State
	closed atomic.Bool
}

// Snapshot pins the current version of every relation and returns the
// consistent view. The capture runs under the read lock, so no write commits
// halfway through it.
func (db *DB) Snapshot() *Snapshot {
	db.mu.RLock()
	s := &Snapshot{db: db, ver: db.ver, states: make(map[string]*delta.State, len(db.stores))}
	for name, st := range db.stores {
		s.states[name] = st.State()
	}
	db.mu.RUnlock()
	db.snaps.Add(1)
	return s
}

// Version returns the database write version the snapshot pins.
func (s *Snapshot) Version() uint64 { return s.ver }

// Close releases the snapshot. Idempotent; only the first call decrements
// the database's open-snapshot count.
func (s *Snapshot) Close() {
	if s.closed.CompareAndSwap(false, true) {
		s.db.snaps.Add(-1)
	}
}

func (s *Snapshot) isClosed() bool { return s.closed.Load() }

// Prepare compiles a statement pinned to the snapshot's versions: every
// Exec reads the pinned data, never refreshing, and errors once the
// snapshot is closed.
func (s *Snapshot) Prepare(clauses ...Clause) (*Stmt, error) {
	sp, err := compileSpec(modeQuery, clauses)
	if err != nil {
		return nil, err
	}
	return s.db.prepareSpec(sp, s)
}

// Bind pins an already-compiled live statement to the snapshot, sharing
// its compiled plan (the expensive part of Prepare) and re-snapshotting
// only the inputs at the pinned versions. Together with DB.PrepareCached
// this gives the many-connection server one plan per query shape across
// all live and snapshot-pinned executions. The bound statement reads the
// pinned data forever (never refreshing) and errors after Close; the
// receiver statement is unaffected.
func (s *Snapshot) Bind(st *Stmt) (*Stmt, error) {
	if st == nil {
		return nil, fmt.Errorf("fdb: Bind of a nil statement")
	}
	if st.db != s.db {
		return nil, fmt.Errorf("fdb: Bind of a statement from a different DB instance")
	}
	return st.pin(s)
}

// Query runs a select-project-join query against the snapshot. Pinned
// plans bypass the database plan cache (cache entries track the live
// versions).
func (s *Snapshot) Query(clauses ...Clause) (*Result, error) {
	sp, err := compileSpec(modeQuery, clauses)
	if err != nil {
		return nil, err
	}
	if len(sp.aggs) > 0 {
		return nil, fmt.Errorf("fdb: query computes aggregates; use QueryAgg")
	}
	st, err := s.db.prepareSpec(sp, s)
	if err != nil {
		return nil, err
	}
	return st.Exec()
}

// QueryAgg runs an aggregation query against the snapshot.
func (s *Snapshot) QueryAgg(clauses ...Clause) (*AggResult, error) {
	sp, err := compileSpec(modeQuery, clauses)
	if err != nil {
		return nil, err
	}
	if len(sp.aggs) == 0 {
		return nil, fmt.Errorf("fdb: QueryAgg needs at least one Agg clause")
	}
	st, err := s.db.prepareSpec(sp, s)
	if err != nil {
		return nil, err
	}
	return st.ExecAgg()
}

// Relations lists the relation names visible in the snapshot, in creation
// order at pin time.
func (s *Snapshot) Relations() []string {
	out := make([]string, 0, len(s.states))
	s.db.mu.RLock()
	for _, name := range s.db.ord {
		if _, ok := s.states[name]; ok {
			out = append(out, name)
		}
	}
	s.db.mu.RUnlock()
	return out
}
