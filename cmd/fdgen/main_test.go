package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runDir invokes the command body into a fresh directory and returns the
// printed summary and the generated files by name.
func runDir(t *testing.T, dir string, args ...string) (string, map[string]string) {
	t.Helper()
	var out bytes.Buffer
	if err := run(append(args, "-out", dir), &out); err != nil {
		t.Fatal(err)
	}
	files := map[string]string{}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		files[e.Name()] = string(data)
	}
	return out.String(), files
}

// TestFdgenSmoke: the generator writes one loadable TSV per relation and a
// pasteable query line, and prints the seed it used.
func TestFdgenSmoke(t *testing.T) {
	out, files := runDir(t, t.TempDir(), "-r", "3", "-a", "6", "-n", "20", "-m", "9", "-k", "2", "-seed", "7")
	if len(files) != 3 {
		t.Fatalf("wrote %d files, want 3 (%v)", len(files), files)
	}
	for name, data := range files {
		lines := strings.Split(strings.TrimRight(data, "\n"), "\n")
		if len(lines) < 2 {
			t.Fatalf("%s: only %d lines", name, len(lines))
		}
		header := strings.Split(lines[0], "\t")
		if len(header) < 2 || !strings.HasPrefix(header[0], "R") {
			t.Fatalf("%s: bad header %q", name, lines[0])
		}
		for _, l := range lines[1:] {
			if len(strings.Split(l, "\t")) != len(header)-1 {
				t.Fatalf("%s: row %q does not match header arity %d", name, l, len(header)-1)
			}
		}
	}
	if !strings.Contains(out, "seed 7") {
		t.Fatalf("summary does not print the seed:\n%s", out)
	}
	if !strings.Contains(out, "-eq ") || !strings.Contains(out, "-from ") {
		t.Fatalf("summary lacks a pasteable query:\n%s", out)
	}
}

// TestFdgenDeterministic: the same seed writes byte-identical datasets and
// suggests the same query; a different seed diverges.
func TestFdgenDeterministic(t *testing.T) {
	args := []string{"-r", "2", "-a", "5", "-n", "50", "-m", "12", "-dist", "zipf", "-seed", "42"}
	outA, filesA := runDir(t, t.TempDir(), args...)
	outB, filesB := runDir(t, t.TempDir(), args...)
	if len(filesA) != len(filesB) {
		t.Fatalf("file sets differ: %d vs %d", len(filesA), len(filesB))
	}
	for name, data := range filesA {
		if filesB[name] != data {
			t.Fatalf("%s differs between two runs with the same seed", name)
		}
	}
	// The summary differs only in the -load paths (temp dirs).
	if qa, qb := afterFrom(outA), afterFrom(outB); qa != qb {
		t.Fatalf("suggested queries differ between identical seeds:\n%s\n%s", qa, qb)
	}
	outC, filesC := runDir(t, t.TempDir(), "-r", "2", "-a", "5", "-n", "50", "-m", "12", "-dist", "zipf", "-seed", "43")
	same := true
	for name, data := range filesA {
		if filesC[name] != data {
			same = false
		}
	}
	if same && afterFrom(outA) == afterFrom(outC) {
		t.Fatal("different seeds produced identical output")
	}
}

// TestFdgenBadFlags: unknown distributions are rejected.
func TestFdgenBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-dist", "pareto", "-out", t.TempDir()}, &out); err == nil {
		t.Fatal("unknown distribution accepted")
	}
}

// afterFrom strips everything before the path-independent "-from" tail of
// the suggested query.
func afterFrom(s string) string {
	if i := strings.Index(s, "-from"); i >= 0 {
		return s[i:]
	}
	return s
}
