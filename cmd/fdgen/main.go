// Command fdgen writes synthetic relation files in the tab-separated format
// understood by cmd/fdb, using the workload generators of the paper's
// evaluation: R relations over A attributes with N tuples each, values
// drawn uniformly or Zipf-distributed from [1, M].
//
//	fdgen -r 3 -a 9 -n 1000 -m 100 -dist zipf -out data/
//
// It also prints a ready-to-paste fdb invocation with K random
// non-redundant equalities.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/gen"
)

func main() {
	r := flag.Int("r", 3, "number of relations")
	a := flag.Int("a", 9, "number of attributes (spread evenly)")
	n := flag.Int("n", 1000, "tuples per relation")
	m := flag.Int("m", 100, "value domain [1, m]")
	k := flag.Int("k", 2, "suggested number of join equalities")
	dist := flag.String("dist", "uniform", "value distribution: uniform or zipf")
	out := flag.String("out", ".", "output directory")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	d := gen.Uniform
	if *dist == "zipf" {
		d = gen.Zipf
	} else if *dist != "uniform" {
		fatal(fmt.Errorf("unknown distribution %q", *dist))
	}
	rng := rand.New(rand.NewSource(*seed))
	sch, err := gen.RandomSchema(rng, *r, *a)
	if err != nil {
		fatal(err)
	}
	rels := sch.Populate(rng, *n, gen.NewSampler(rng, d, *m))
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	var loads []string
	for _, rel := range rels {
		path := filepath.Join(*out, strings.ToLower(rel.Name)+".tsv")
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(f, "%s", rel.Name)
		for _, at := range rel.Schema {
			// Attribute names are global (X1..XA); strip nothing, but the
			// fdb loader qualifies them as Name.attr, so write bare names.
			fmt.Fprintf(f, "\t%s", at)
		}
		fmt.Fprintln(f)
		for _, t := range rel.Tuples {
			for i, v := range t {
				if i > 0 {
					fmt.Fprint(f, "\t")
				}
				fmt.Fprintf(f, "%d", int64(v))
			}
			fmt.Fprintln(f)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		loads = append(loads, "-load "+path)
	}
	eqs, err := gen.RandomEqualities(rng, sch, *k)
	if err != nil {
		fatal(err)
	}
	var names []string
	for _, rel := range rels {
		names = append(names, rel.Name)
	}
	fmt.Printf("wrote %d relations to %s\n", len(rels), *out)
	fmt.Printf("suggested query:\n  fdb %s -from %s", strings.Join(loads, " "), strings.Join(names, ","))
	for _, e := range eqs {
		// Qualify with relation names for the fdb loader.
		fmt.Printf(" -eq %s=%s", qualify(sch, string(e.A)), qualify(sch, string(e.B)))
	}
	fmt.Println()
}

func qualify(s *gen.Schema, attr string) string {
	for i, sch := range s.Relations {
		for _, a := range sch {
			if string(a) == attr {
				return s.Names[i] + "." + attr
			}
		}
	}
	return attr
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fdgen:", err)
	os.Exit(1)
}
