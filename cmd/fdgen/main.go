// Command fdgen writes synthetic relation files in the tab-separated format
// understood by cmd/fdb, using the workload generators of the paper's
// evaluation: R relations over A attributes with N tuples each, values
// drawn uniformly or Zipf-distributed from [1, M].
//
//	fdgen -r 3 -a 9 -n 1000 -m 100 -dist zipf -out data/
//
// It also prints a ready-to-paste fdb invocation with K random
// non-redundant equalities. All randomness flows from -seed (printed with
// the output), so any generated dataset — including one that surfaced a bug
// — reproduces exactly from that one number.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/gen"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return // -h printed usage; that is a success
		}
		fmt.Fprintln(os.Stderr, "fdgen:", err)
		os.Exit(1)
	}
}

// run is the testable body of the command: parse flags from args, write the
// dataset, print the summary to out.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("fdgen", flag.ContinueOnError)
	r := fs.Int("r", 3, "number of relations")
	a := fs.Int("a", 9, "number of attributes (spread evenly)")
	n := fs.Int("n", 1000, "tuples per relation")
	m := fs.Int("m", 100, "value domain [1, m]")
	k := fs.Int("k", 2, "suggested number of join equalities")
	dist := fs.String("dist", "uniform", "value distribution: uniform or zipf")
	outDir := fs.String("out", ".", "output directory")
	seed := fs.Int64("seed", 1, "random seed (all output derives from it)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	d := gen.Uniform
	if *dist == "zipf" {
		d = gen.Zipf
	} else if *dist != "uniform" {
		return fmt.Errorf("unknown distribution %q", *dist)
	}
	rng := rand.New(rand.NewSource(*seed))
	sch, err := gen.RandomSchema(rng, *r, *a)
	if err != nil {
		return err
	}
	rels := sch.Populate(rng, *n, gen.NewSampler(rng, d, *m))
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}
	var loads []string
	for _, rel := range rels {
		path := filepath.Join(*outDir, strings.ToLower(rel.Name)+".tsv")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		fmt.Fprintf(f, "%s", rel.Name)
		for _, at := range rel.Schema {
			// Attribute names are global (X1..XA); strip nothing, but the
			// fdb loader qualifies them as Name.attr, so write bare names.
			fmt.Fprintf(f, "\t%s", at)
		}
		fmt.Fprintln(f)
		for _, t := range rel.Tuples {
			for i, v := range t {
				if i > 0 {
					fmt.Fprint(f, "\t")
				}
				fmt.Fprintf(f, "%d", int64(v))
			}
			fmt.Fprintln(f)
		}
		if err := f.Close(); err != nil {
			return err
		}
		loads = append(loads, "-load "+path)
	}
	eqs, err := gen.RandomEqualities(rng, sch, *k)
	if err != nil {
		return err
	}
	var names []string
	for _, rel := range rels {
		names = append(names, rel.Name)
	}
	fmt.Fprintf(out, "wrote %d relations to %s (seed %d)\n", len(rels), *outDir, *seed)
	fmt.Fprintf(out, "suggested query:\n  fdb %s -from %s", strings.Join(loads, " "), strings.Join(names, ","))
	for _, e := range eqs {
		// Qualify with relation names for the fdb loader.
		fmt.Fprintf(out, " -eq %s=%s", qualify(sch, string(e.A)), qualify(sch, string(e.B)))
	}
	fmt.Fprintln(out)
	return nil
}

func qualify(s *gen.Schema, attr string) string {
	for i, sch := range s.Relations {
		for _, a := range sch {
			if string(a) == attr {
				return s.Names[i] + "." + attr
			}
		}
	}
	return attr
}
