// Command fdbench regenerates the data series of every figure in the
// paper's evaluation (Section 5), plus the engine's own experiments. Usage:
//
//	fdbench -exp 1            # Figure 5:   f-tree optimisation on flat data
//	fdbench -exp 2            # Figures 6+9: full-search vs greedy optimiser
//	fdbench -exp 3            # Figure 7:   evaluation on flat data
//	fdbench -exp 3 -comb      # Figure 7 (right column): combinatorial data
//	fdbench -exp 4            # Figure 8:   evaluation on factorised data
//	fdbench -exp 5            # prepared statements vs ad-hoc queries
//	fdbench -exp 6            # factorised aggregation vs enumerate-then-fold
//	fdbench -exp 7            # arena-backed columnar encoding vs pointer form
//	fdbench -exp 8            # morsel-parallel execution: speedup vs worker count
//	fdbench -exp 9            # ordered top-k (ORDER BY + LIMIT) vs flat sort-then-cut
//	fdbench -exp 10           # write throughput: incremental delta merge vs full rebuild
//	fdbench -exp 11           # network front-end: library vs wire vs pipelined wire
//	fdbench -exp 12           # zero-copy snapshot cold open vs TSV parse + rebuild
//	fdbench -exp 13           # greedy planning tier vs exhaustive search: compile latency + plan cost
//	fdbench -exp 14           # native set algebra (UNION/EXCEPT/INTERSECT) vs flat hash baseline
//	fdbench -exp 0            # everything (the EXPERIMENTS.md grids)
//
// Flags -runs, -seed, -timeout shrink or grow the grids.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"repro/internal/bench"
	"repro/internal/gen"
)

func main() {
	exp := flag.Int("exp", 0, "experiment to run (1-14; 0 = all)")
	runs := flag.Int("runs", 3, "repetitions per configuration")
	seed := flag.Int64("seed", 42, "random seed")
	comb := flag.Bool("comb", false, "experiment 3: use the combinatorial dataset (Figure 7 right)")
	timeout := flag.Duration("timeout", 20*time.Second, "relational engine budget per query")
	maxN := flag.Int("maxn", 3000, "experiment 3: largest relation size in the sweep")
	flag.Parse()

	switch *exp {
	case 0:
		exp1(*seed, *runs)
		exp2(*seed, *runs)
		exp3(*seed, *timeout, *maxN, false)
		exp3(*seed, *timeout, *maxN, true)
		exp4(*seed, *runs, *timeout)
		exp5(*seed, *runs)
		exp6(*seed, *runs)
		exp7(*seed, *runs)
		exp8(*seed, *runs)
		exp9(*seed, *runs)
		exp10(*seed, *runs)
		exp11(*seed)
		exp12(*seed, *runs)
		exp13(*seed, *runs)
		exp14(*seed, *runs)
	case 1:
		exp1(*seed, *runs)
	case 2:
		exp2(*seed, *runs)
	case 3:
		exp3(*seed, *timeout, *maxN, *comb)
	case 4:
		exp4(*seed, *runs, *timeout)
	case 5:
		exp5(*seed, *runs)
	case 6:
		exp6(*seed, *runs)
	case 7:
		exp7(*seed, *runs)
	case 8:
		exp8(*seed, *runs)
	case 9:
		exp9(*seed, *runs)
	case 10:
		exp10(*seed, *runs)
	case 11:
		exp11(*seed)
	case 12:
		exp12(*seed, *runs)
	case 13:
		exp13(*seed, *runs)
	case 14:
		exp14(*seed, *runs)
	default:
		fmt.Fprintln(os.Stderr, "fdbench: -exp must be 0..14")
		os.Exit(2)
	}
}

func exp1(seed int64, runs int) {
	fmt.Println("# Experiment 1 (Figure 5): optimal f-tree for a random query, A=40 attributes")
	fmt.Println("# R K avg_opt_ms avg_s runs budget_failures")
	rng := rand.New(rand.NewSource(seed))
	rows := bench.Experiment1(rng,
		[]int{1, 2, 3, 4, 5, 6, 7, 8},
		[]int{1, 2, 3, 4, 5, 6, 7, 8, 9}, 40, runs)
	for _, r := range rows {
		fmt.Printf("%d %d %.3f %.3f %d %d\n", r.R, r.K, r.AvgMS, r.AvgS, r.Runs, r.Failures)
	}
}

func exp2(seed int64, runs int) {
	fmt.Println("# Experiment 2 (Figures 6 and 9): full search vs greedy, R=4 relations, A=10 attributes")
	fmt.Println("# K L full_plan_cost full_result_cost greedy_plan_cost greedy_result_cost full_ms greedy_ms runs")
	rng := rand.New(rand.NewSource(seed))
	rows := bench.Experiment2(rng, 4, 10,
		[]int{1, 2, 3, 4, 5, 6, 7, 8},
		[]int{1, 2, 3, 4, 5, 6}, runs)
	for _, r := range rows {
		if r.Runs == 0 {
			continue
		}
		fmt.Printf("%d %d %.3f %.3f %.3f %.3f %.3f %.3f %d\n",
			r.K, r.L, r.FullPlanCost, r.FullResultCost, r.GreedyPlanCost,
			r.GreedyResultCost, r.FullMS, r.GreedyMS, r.Runs)
	}
}

func exp3(seed int64, timeout time.Duration, maxN int, comb bool) {
	rng := rand.New(rand.NewSource(seed))
	if comb {
		fmt.Println("# Experiment 3 (Figure 7, right): combinatorial dataset, R=4, A=10, values [1,20]")
		fmt.Println("# K fdb_size flat_size fdb_ms rdb_ms volcano_ms rdb_timeout volcano_timeout")
		for k := 1; k <= 8; k++ {
			q, err := gen.CombinatorialQuery(rng, k, gen.Uniform)
			if err != nil {
				fmt.Fprintln(os.Stderr, "fdbench:", err)
				return
			}
			row, err := bench.Exp3FromQuery(q, bench.Exp3Config{
				K: k, Dist: gen.Uniform, Timeout: timeout, MaxTuples: 50_000_000,
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, "fdbench:", err)
				return
			}
			fmt.Printf("%d %d %d %.3f %.3f %.3f %v %v\n",
				k, row.FDBSize, row.FlatSize, row.FDBMS, row.RDBMS, row.VolcanoMS,
				row.RDBTimedOut, row.VolcTimedOut)
		}
		return
	}
	fmt.Println("# Experiment 3 (Figure 7): 3 ternary relations, values [1,100]")
	fmt.Println("# dist N K fdb_size flat_size fdb_ms rdb_ms volcano_ms rdb_timeout volcano_timeout")
	for _, dist := range []gen.Distribution{gen.Uniform, gen.Zipf} {
		for n := 300; n <= maxN; n *= 3 {
			for k := 2; k <= 4; k++ {
				row, err := bench.Experiment3Point(rng, bench.Exp3Config{
					Relations: 3, Attributes: 9, N: n, K: k, M: 100,
					Dist: dist, Timeout: timeout, MaxTuples: 50_000_000,
				})
				if err != nil {
					fmt.Fprintln(os.Stderr, "fdbench:", err)
					return
				}
				fmt.Printf("%s %d %d %d %d %.3f %.3f %.3f %v %v\n",
					dist, n, k, row.FDBSize, row.FlatSize, row.FDBMS, row.RDBMS,
					row.VolcanoMS, row.RDBTimedOut, row.VolcTimedOut)
			}
		}
	}
}

func exp5(seed int64, runs int) {
	fmt.Println("# Experiment 5: prepared statements (Prepare once, Exec per constant) vs cold ad-hoc Query")
	fmt.Println("# execs adhoc_ms_per_exec prepared_ms_per_exec speedup cache_hits cache_misses")
	rng := rand.New(rand.NewSource(seed))
	cfg := bench.DefaultExp5Config()
	for i := 0; i < runs; i++ {
		row, err := bench.PreparedVsAdhoc(rng, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fdbench:", err)
			return
		}
		fmt.Printf("%d %.3f %.3f %.2f %d %d\n",
			row.Execs, row.AdhocNS/1e6, row.PreparedNS/1e6, row.Speedup,
			row.CacheHits, row.CacheMisses)
	}
}

func exp6(seed int64, runs int) {
	fmt.Println("# Experiment 6: grouped aggregation on the factorised result — single pass vs enumerate-then-fold")
	fmt.Println("# workload scale frep_size flat_tuples groups fact_ms fold_ms speedup fold_skipped")
	rng := rand.New(rand.NewSource(seed))
	run := func(workload string, scale int, point func(*rand.Rand, bench.Exp6Config) (bench.Exp6Row, error)) {
		var acc bench.Exp6Row
		n := 0
		for i := 0; i < runs; i++ {
			row, err := point(rng, bench.Exp6Config{Scale: scale, MaxFold: 5_000_000})
			if err != nil {
				fmt.Fprintln(os.Stderr, "fdbench:", err)
				return
			}
			acc.FRepSize += row.FRepSize
			acc.Tuples += row.Tuples
			acc.Groups += row.Groups
			acc.FactMS += row.FactMS
			acc.FoldMS += row.FoldMS
			if row.FoldSkipped {
				acc.FoldSkipped = true
			}
			n++
		}
		if n == 0 {
			return
		}
		f := float64(n)
		speedup := 0.0
		if acc.FactMS > 0 && !acc.FoldSkipped {
			speedup = acc.FoldMS / acc.FactMS
		}
		fmt.Printf("%s %d %d %d %d %.3f %.3f %.1f %v\n",
			workload, scale, acc.FRepSize/int64(n), acc.Tuples/int64(n), acc.Groups/n,
			acc.FactMS/f, acc.FoldMS/f, speedup, acc.FoldSkipped)
	}
	for _, scale := range []int{1, 2, 4, 8} {
		run("retailer", scale, bench.Experiment6Retailer)
	}
	for _, length := range []int{2, 4, 6, 8} {
		run("chain", length, bench.Experiment6Chain)
	}
}

func exp7(seed int64, runs int) {
	fmt.Println("# Experiment 7: arena-backed columnar encoding vs pointer representation (same inputs, same f-tree)")
	fmt.Println("# workload scale frep_size flat_tuples enumerated build_ptr_ms build_enc_ms build_x enum_ptr_ms enum_enc_ms enum_x agg_ptr_ms agg_enc_ms agg_x")
	rng := rand.New(rand.NewSource(seed))
	for _, scale := range []int{1, 2, 4, 8} {
		var acc bench.Exp7Row
		n := 0
		for i := 0; i < runs; i++ {
			row, err := bench.Experiment7Encoding(rng, bench.Exp7Config{Scale: scale, MaxEnum: 5_000_000})
			if err != nil {
				// The experiment doubles as the encoded-vs-pointer parity
				// check CI runs; its failure must fail the process.
				fmt.Fprintln(os.Stderr, "fdbench:", err)
				os.Exit(1)
			}
			acc.FRepSize += row.FRepSize
			acc.Tuples += row.Tuples
			acc.Enumerated += row.Enumerated
			acc.BuildPtrMS += row.BuildPtrMS
			acc.BuildEncMS += row.BuildEncMS
			acc.EnumPtrMS += row.EnumPtrMS
			acc.EnumEncMS += row.EnumEncMS
			acc.AggPtrMS += row.AggPtrMS
			acc.AggEncMS += row.AggEncMS
			n++
		}
		if n == 0 {
			return
		}
		f := float64(n)
		x := func(ptr, enc float64) float64 {
			if enc <= 0 {
				return 0
			}
			return ptr / enc
		}
		fmt.Printf("retailer %d %d %d %d %.3f %.3f %.1f %.3f %.3f %.1f %.3f %.3f %.1f\n",
			scale, acc.FRepSize/int64(n), acc.Tuples/int64(n), acc.Enumerated/int64(n),
			acc.BuildPtrMS/f, acc.BuildEncMS/f, x(acc.BuildPtrMS, acc.BuildEncMS),
			acc.EnumPtrMS/f, acc.EnumEncMS/f, x(acc.EnumPtrMS, acc.EnumEncMS),
			acc.AggPtrMS/f, acc.AggEncMS/f, x(acc.AggPtrMS, acc.AggEncMS))
	}
}

func exp8(seed int64, runs int) {
	fmt.Println("# Experiment 8: morsel-parallel execution — speedup vs worker count (same inputs, same lifted f-tree)")
	fmt.Printf("# gomaxprocs=%d; speedups are relative to the 1-worker leg of each configuration\n", runtime.GOMAXPROCS(0))
	fmt.Println("# workload scale workers frep_size flat_tuples build_ms build_x agg_ms agg_x enum_ms enum_x")
	rng := rand.New(rand.NewSource(seed))
	workers := []int{1, 2, 4, 8}
	run := func(workload string, scale int, sweep func(*rand.Rand, bench.Exp8Config) ([]bench.Exp8Row, error)) {
		acc := map[int]*bench.Exp8Row{}
		n := 0
		for i := 0; i < runs; i++ {
			rows, err := sweep(rng, bench.Exp8Config{Scale: scale, Workers: workers, MaxEnum: 20_000_000})
			if err != nil {
				// The experiment doubles as the parallel-vs-serial parity
				// check CI runs; its failure must fail the process.
				fmt.Fprintln(os.Stderr, "fdbench:", err)
				os.Exit(1)
			}
			for i := range rows {
				r := rows[i]
				a, ok := acc[r.Workers]
				if !ok {
					acc[r.Workers] = &r
					continue
				}
				a.FRepSize += r.FRepSize
				a.Tuples += r.Tuples
				a.BuildMS += r.BuildMS
				a.AggMS += r.AggMS
				a.EnumMS += r.EnumMS
			}
			n++
		}
		if n == 0 {
			return
		}
		f := float64(n)
		base := acc[workers[0]]
		x := func(b, cur float64) float64 {
			if cur <= 0 {
				return 0
			}
			return b / cur
		}
		for _, w := range workers {
			r := acc[w]
			fmt.Printf("%s %d %d %d %d %.3f %.2f %.3f %.2f %.3f %.2f\n",
				workload, scale, w, r.FRepSize/int64(n), r.Tuples/int64(n),
				r.BuildMS/f, x(base.BuildMS, r.BuildMS),
				r.AggMS/f, x(base.AggMS, r.AggMS),
				r.EnumMS/f, x(base.EnumMS, r.EnumMS))
		}
	}
	for _, scale := range []int{2, 4, 8} {
		run("retailer", scale, bench.Experiment8Retailer)
	}
	for _, length := range []int{4, 6, 8} {
		run("chain", length, bench.Experiment8Chain)
	}
}

func exp9(seed int64, runs int) {
	fmt.Println("# Experiment 9: ordered top-k (ORDER BY + LIMIT k) vs flat enumerate-sort-cut on the same built result")
	fmt.Println("# retailer streams off the order-compatible f-tree (O(k) entries); chain falls back to the bounded size-k heap")
	fmt.Println("# workload scale k flat_tuples frep_size build_ms topk_ms flat_ms speedup mode")
	rng := rand.New(rand.NewSource(seed))
	run := func(sweep func(*rand.Rand, bench.Exp9Config) (bench.Exp9Row, error), scale, k int) {
		var acc bench.Exp9Row
		n := 0
		for i := 0; i < runs; i++ {
			row, err := sweep(rng, bench.Exp9Config{Scale: scale, K: k})
			if err != nil {
				// The experiment doubles as the top-k-vs-baseline parity check
				// CI runs; its failure must fail the process.
				fmt.Fprintln(os.Stderr, "fdbench:", err)
				os.Exit(1)
			}
			acc.Workload, acc.Streamed = row.Workload, row.Streamed
			acc.Tuples += row.Tuples
			acc.FRepSize += row.FRepSize
			acc.BuildMS += row.BuildMS
			acc.TopkMS += row.TopkMS
			acc.FlatMS += row.FlatMS
			n++
		}
		f := float64(n)
		speedup := 0.0
		if acc.TopkMS > 0 {
			speedup = acc.FlatMS / acc.TopkMS
		}
		mode := "heap"
		if acc.Streamed {
			mode = "stream"
		}
		fmt.Printf("%s %d %d %d %d %.3f %.3f %.3f %.1f %s\n",
			acc.Workload, scale, k, acc.Tuples/int64(n), acc.FRepSize/int64(n),
			acc.BuildMS/f, acc.TopkMS/f, acc.FlatMS/f, speedup, mode)
	}
	for _, scale := range []int{2, 4, 8} {
		run(bench.Experiment9Retailer, scale, 10)
	}
	for _, length := range []int{4, 5, 6} {
		run(bench.Experiment9Chain, length, 10)
	}
}

func exp10(seed int64, runs int) {
	fmt.Println("# Experiment 10: write throughput — batch insert + incremental statement refresh vs full rebuild")
	fmt.Println("# workload scale frac base_rows delta_rows result_tuples insert_ms merge_ms rebuild_ms speedup")
	rng := rand.New(rand.NewSource(seed))
	for _, scale := range []int{2, 4, 8} {
		acc := map[float64]*bench.Exp10Row{}
		var fracs []float64
		n := 0
		for i := 0; i < runs; i++ {
			rows, err := bench.Experiment10Writes(rng, bench.Exp10Config{Scale: scale})
			if err != nil {
				// The experiment doubles as the merged-vs-rebuilt parity check
				// CI runs; its failure must fail the process.
				fmt.Fprintln(os.Stderr, "fdbench:", err)
				os.Exit(1)
			}
			for i := range rows {
				r := rows[i]
				a, ok := acc[r.Frac]
				if !ok {
					acc[r.Frac] = &r
					fracs = append(fracs, r.Frac)
					continue
				}
				a.Tuples += r.Tuples
				a.InsertMS += r.InsertMS
				a.MergeMS += r.MergeMS
				a.RebuildMS += r.RebuildMS
			}
			n++
		}
		f := float64(n)
		for _, frac := range fracs {
			r := acc[frac]
			speedup := 0.0
			if inc := r.InsertMS + r.MergeMS; inc > 0 {
				speedup = r.RebuildMS / inc
			}
			fmt.Printf("%s %d %.2f %d %d %d %.3f %.3f %.3f %.1f\n",
				r.Workload, scale, frac, r.BaseRows, r.DeltaRows, r.Tuples/int64(n),
				r.InsertMS/f, r.MergeMS/f, r.RebuildMS/f, speedup)
		}
	}
	fmt.Println("# mixed read/write (90/10): ops writes read_p50_ms read_p99_ms write_p50_ms cache_hit_rate")
	for _, scale := range []int{2, 4} {
		row, err := bench.Experiment10Mixed(rng, bench.Exp10Config{Scale: scale, Ops: 300})
		if err != nil {
			fmt.Fprintln(os.Stderr, "fdbench:", err)
			os.Exit(1)
		}
		fmt.Printf("retailer %d %d %d %.3f %.3f %.3f %.3f\n",
			scale, row.Ops, row.Writes, row.ReadP50MS, row.ReadP99MS, row.WriteP50MS, row.CacheHitRate)
	}
}

func exp11(seed int64) {
	fmt.Println("# Experiment 11: network front-end overhead — library vs wire vs pipelined wire")
	fmt.Println("# mode ops ns_per_op p99_ns")
	rows, err := bench.Experiment11Wire(seed, bench.Exp11Config{Scale: 2, Ops: 400})
	if err != nil {
		fmt.Fprintln(os.Stderr, "fdbench:", err)
		os.Exit(1)
	}
	for _, r := range rows {
		fmt.Printf("%s %d %.0f %.0f\n", r.Mode, r.Ops, r.NsPerOp, r.P99Ns)
	}
}

func exp12(seed int64, runs int) {
	fmt.Println("# Experiment 12: zero-copy snapshot cold open (mmap + enc adoption) vs TSV parse + full rebuild")
	fmt.Println("# workload scale result_tuples file_kb save_ms cold_open_ms rebuild_ms speedup")
	rng := rand.New(rand.NewSource(seed))
	acc := map[int]*bench.Exp12Row{}
	var scales []int
	n := 0
	for i := 0; i < runs; i++ {
		rows, err := bench.Experiment12Persist(rng, bench.Exp12Config{Scales: []int{1, 2, 4, 8}})
		if err != nil {
			// The experiment doubles as the cold-open-vs-live parity check CI
			// runs; its failure must fail the process.
			fmt.Fprintln(os.Stderr, "fdbench:", err)
			os.Exit(1)
		}
		for i := range rows {
			r := rows[i]
			a, ok := acc[r.Scale]
			if !ok {
				acc[r.Scale] = &r
				scales = append(scales, r.Scale)
				continue
			}
			a.Tuples += r.Tuples
			a.FileKB += r.FileKB
			a.SaveMS += r.SaveMS
			a.ColdMS += r.ColdMS
			a.RebuildMS += r.RebuildMS
		}
		n++
	}
	f := float64(n)
	for _, scale := range scales {
		r := acc[scale]
		speedup := 0.0
		if r.ColdMS > 0 {
			speedup = r.RebuildMS / r.ColdMS
		}
		fmt.Printf("retailer %d %d %.1f %.3f %.3f %.3f %.1f\n",
			scale, r.Tuples/int64(n), r.FileKB/f, r.SaveMS/f, r.ColdMS/f, r.RebuildMS/f, speedup)
	}
}

func exp13(seed int64, runs int) {
	fmt.Println("# Experiment 13: greedy statistics-free planning tier vs exhaustive branch-and-bound — cold compile latency and plan cost")
	fmt.Println("# workload scale result_tuples greedy_us exhaustive_us speedup greedy_cost optimal_cost cost_ratio")
	rng := rand.New(rand.NewSource(seed))
	run := func(sweep func(*rand.Rand, bench.Exp13Config) (bench.Exp13Row, error), scale int) {
		var acc bench.Exp13Row
		n := 0
		for i := 0; i < runs; i++ {
			row, err := sweep(rng, bench.Exp13Config{Scale: scale})
			if err != nil {
				// The experiment doubles as the greedy-vs-exhaustive parity and
				// plan-quality check CI runs; its failure must fail the process.
				fmt.Fprintln(os.Stderr, "fdbench:", err)
				os.Exit(1)
			}
			acc.Workload = row.Workload
			acc.Tuples += row.Tuples
			acc.GreedyUS += row.GreedyUS
			acc.ExhaustiveUS += row.ExhaustiveUS
			acc.GreedyCost += row.GreedyCost
			acc.OptimalCost += row.OptimalCost
			n++
		}
		f := float64(n)
		speedup, ratio := 0.0, 0.0
		if acc.GreedyUS > 0 {
			speedup = acc.ExhaustiveUS / acc.GreedyUS
		}
		if acc.OptimalCost > 0 {
			ratio = acc.GreedyCost / acc.OptimalCost
		}
		fmt.Printf("%s %d %d %.1f %.1f %.1f %.3f %.3f %.3f\n",
			acc.Workload, scale, acc.Tuples/int64(n), acc.GreedyUS/f, acc.ExhaustiveUS/f,
			speedup, acc.GreedyCost/f, acc.OptimalCost/f, ratio)
	}
	for _, scale := range []int{1, 4} {
		run(bench.Experiment13Retailer, scale)
	}
	for _, length := range []int{4, 6, 8} {
		run(bench.Experiment13Chain, length)
	}
}

func exp14(seed int64, runs int) {
	fmt.Println("# Experiment 14: native set algebra over the encoding (structural merge) vs flat hash baseline, retailer legs")
	fmt.Println("# op scale leg_a_tuples leg_b_tuples result_tuples frep_size build_ms fact_ms flat_ms speedup")
	rng := rand.New(rand.NewSource(seed))
	for _, scale := range []int{1, 4} {
		acc := map[string]*bench.Exp14Row{}
		var order []string
		n := 0
		for i := 0; i < runs; i++ {
			rows, err := bench.Experiment14Retailer(rng, bench.Exp14Config{Scale: scale})
			if err != nil {
				// The experiment doubles as the factorised-vs-flat set-algebra
				// parity check CI runs; its failure must fail the process.
				fmt.Fprintln(os.Stderr, "fdbench:", err)
				os.Exit(1)
			}
			for i := range rows {
				r := rows[i]
				a, ok := acc[r.Op]
				if !ok {
					acc[r.Op] = &r
					order = append(order, r.Op)
					continue
				}
				a.TuplesA += r.TuplesA
				a.TuplesB += r.TuplesB
				a.Tuples += r.Tuples
				a.FRepSize += r.FRepSize
				a.BuildMS += r.BuildMS
				a.FactMS += r.FactMS
				a.FlatMS += r.FlatMS
			}
			n++
		}
		f := float64(n)
		for _, op := range order {
			r := acc[op]
			speedup := 0.0
			if r.FactMS > 0 {
				speedup = r.FlatMS / r.FactMS
			}
			fmt.Printf("%s %d %d %d %d %d %.3f %.3f %.3f %.1f\n",
				op, scale, r.TuplesA/int64(n), r.TuplesB/int64(n), r.Tuples/int64(n),
				r.FRepSize/int64(n), r.BuildMS/f, r.FactMS/f, r.FlatMS/f, speedup)
		}
	}
}

func exp4(seed int64, runs int, timeout time.Duration) {
	fmt.Println("# Experiment 4 (Figure 8): L equalities on the factorised result of K equalities, R=4, A=10")
	fmt.Println("# K L fdb_size flat_size fdb_ms rdb_ms plan_cost rdb_skipped")
	rng := rand.New(rand.NewSource(seed))
	for k := 1; k <= 6; k++ {
		for l := 1; l <= 3; l++ {
			if k+l >= 10 {
				continue
			}
			var acc bench.Exp4Row
			n := 0
			for i := 0; i < runs; i++ {
				row, err := bench.Experiment4Point(rng, bench.Exp4Config{
					Relations: 4, Attributes: 10, N: 256, K: k, L: l, M: 20,
					Dist: gen.Uniform, Timeout: timeout, MaxFlat: 3_000_000,
				})
				if err != nil {
					continue
				}
				acc.FDBSize += row.FDBSize
				acc.FlatSize += row.FlatSize
				acc.FDBMS += row.FDBMS
				acc.RDBMS += row.RDBMS
				acc.PlanCost += row.PlanCost
				if row.RDBSkipped {
					acc.RDBSkipped = true
				}
				n++
			}
			if n == 0 {
				continue
			}
			f := float64(n)
			fmt.Printf("%d %d %d %d %.3f %.3f %.3f %v\n",
				k, l, acc.FDBSize/int64(n), acc.FlatSize/int64(n),
				acc.FDBMS/f, acc.RDBMS/f, acc.PlanCost/f, acc.RDBSkipped)
		}
	}
}
