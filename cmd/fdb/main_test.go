package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// writeTSVs materialises the test relations and returns their paths.
func writeTSVs(t *testing.T) (orders, store, disp string) {
	t.Helper()
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	orders = write("orders.tsv", "Orders\toid\titem\n"+
		"o1\tMilk\no1\tCheese\no2\tMelon\no3\tCheese\no3\tMelon\n")
	store = write("store.tsv", "Store\tlocation\titem\n"+
		"Istanbul\tMilk\nIstanbul\tCheese\nIstanbul\tMelon\nIzmir\tMilk\nAntalya\tMilk\nAntalya\tCheese\n")
	disp = write("disp.tsv", "Disp\tdispatcher\tlocation\n"+
		"Adnan\tIstanbul\nAdnan\tIzmir\nYasemin\tIstanbul\nVolkan\tAntalya\n")
	return
}

// TestOrderedQueryGolden locks the ordered-query output down: the same
// ORDER BY/LIMIT invocation must print byte-identical output on every run
// (stable plan, stable streaming order, stable rendering). Regenerate with
// `go test ./cmd/fdb -run Golden -update`.
func TestOrderedQueryGolden(t *testing.T) {
	orders, store, disp := writeTSVs(t)
	var out bytes.Buffer
	args := []string{
		"-load", orders, "-load", store, "-load", disp,
		"-from", "Orders,Store,Disp",
		"-eq", "Orders.item=Store.item",
		"-eq", "Store.location=Disp.location",
		"-orderby", "Orders.item,-Disp.dispatcher",
		"-offset", "1",
		"-limit", "6",
		"-distinct",
		"-rows", "0",
	}
	if err := run(args, strings.NewReader(""), &out); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "ordered_golden.txt")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Fatalf("ordered output drifted from %s:\n--- got ---\n%s\n--- want ---\n%s", golden, out.Bytes(), want)
	}
	// Stability across runs, not just against the checked-in file.
	var again bytes.Buffer
	if err := run(args, strings.NewReader(""), &again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), again.Bytes()) {
		t.Fatal("two identical invocations printed different output")
	}
}

// TestREPLOrderedVerbs drives the REPL grammar for orderby/limit/offset/
// distinct end to end.
func TestREPLOrderedVerbs(t *testing.T) {
	orders, store, disp := writeTSVs(t)
	script := strings.Join([]string{
		"load " + orders,
		"load " + store,
		"load " + disp,
		"query from Orders orderby -Orders.item limit 2",
		"query from Orders,Store eq Orders.item=Store.item project Store.location distinct orderby Store.location",
		"prepare q from Orders orderby Orders.oid,-Orders.item offset 1",
		"exec q",
		"quit",
	}, "\n") + "\n"
	var out bytes.Buffer
	if err := run([]string{"-i", "-rows", "0"}, strings.NewReader(script), &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if strings.Contains(s, "error:") {
		t.Fatalf("REPL reported an error:\n%s", s)
	}
	for _, want := range []string{"Melon", "Antalya", "Istanbul", "Izmir", "q compiled"} {
		if !strings.Contains(s, want) {
			t.Fatalf("REPL output misses %q:\n%s", want, s)
		}
	}
	// Distinct projection, ordered: the location rows come back sorted.
	if !strings.Contains(s, "Antalya\nIstanbul\nIzmir\n") {
		t.Fatalf("distinct ordered projection rows missing or out of order:\n%s", s)
	}
}

// TestWriteSnapshotGolden locks the write/snapshot REPL flow down byte for
// byte: read-your-writes (insert/upsert/delete visible to the next query),
// snapshot isolation (a pinned snapshot keeps its rows across writes and a
// compaction), and the loud failure of a released snapshot. Regenerate with
// `go test ./cmd/fdb -run Golden -update`.
func TestWriteSnapshotGolden(t *testing.T) {
	orders, store, disp := writeTSVs(t)
	script := strings.Join([]string{
		"load " + orders,
		"load " + store,
		"load " + disp,
		"query from Orders orderby Orders.oid,Orders.item",
		"insert Orders o4 Milk",
		"query from Orders orderby Orders.oid,Orders.item",
		"snapshot s1",
		"insert Orders o5 Melon",
		"upsert Orders 1 o1 Bread",
		"delete Orders o2 Melon",
		"compact Orders",
		"squery s1 from Orders orderby Orders.oid,Orders.item",
		"query from Orders orderby Orders.oid,Orders.item",
		"release s1",
		"squery s1 from Orders",
		"quit",
	}, "\n") + "\n"
	var out bytes.Buffer
	if err := run([]string{"-i", "-rows", "0"}, strings.NewReader(script), &out); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "writes_golden.txt")
	if *update {
		if err := os.WriteFile(golden, out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Fatalf("write/snapshot output drifted from %s:\n--- got ---\n%s\n--- want ---\n%s", golden, out.Bytes(), want)
	}
	// The released snapshot must have failed loudly, not served data.
	if !strings.Contains(out.String(), "error: fdb: snapshot closed") {
		t.Fatalf("released snapshot did not fail loudly:\n%s", out.String())
	}
	// Stability across runs.
	var again bytes.Buffer
	if err := run([]string{"-i", "-rows", "0"}, strings.NewReader(script), &again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), again.Bytes()) {
		t.Fatal("two identical invocations printed different output")
	}
}

// TestSaveOpenGolden pins the persistence round trip byte for byte: the
// same query printed from the live database, from a REPL-reopened snapshot,
// and from a -open invocation in a fresh process must be identical — the
// snapshot file preserves relations, dictionary codes and plan output
// exactly. Regenerate with `go test ./cmd/fdb -run Golden -update`.
func TestSaveOpenGolden(t *testing.T) {
	orders, store, disp := writeTSVs(t)
	snap := filepath.Join(t.TempDir(), "grocery.fdb")
	query := "query from Orders,Store,Disp eq Orders.item=Store.item eq Store.location=Disp.location orderby Orders.oid,Disp.dispatcher"
	agg := "query from Orders,Store eq Orders.item=Store.item groupby Store.location agg count agg distinct(Orders.item)"
	script := strings.Join([]string{
		"load " + orders,
		"load " + store,
		"load " + disp,
		query,
		agg,
		"save " + snap,
		"open " + snap,
		query,
		agg,
		"quit",
	}, "\n") + "\n"
	var out bytes.Buffer
	if err := run([]string{"-i", "-rows", "0"}, strings.NewReader(script), &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if strings.Contains(s, "error:") {
		t.Fatalf("REPL reported an error:\n%s", s)
	}
	// The query output before the save and after the reopen must be byte
	// identical: split on the prompt lines and compare the two report blocks.
	blocks := strings.Split(s, "fdb> ")
	var reports []string
	for _, b := range blocks {
		if strings.HasPrefix(b, "f-tree:") || strings.HasPrefix(b, "groups:") {
			reports = append(reports, b)
		}
	}
	if len(reports) != 4 {
		t.Fatalf("expected 4 query reports, found %d:\n%s", len(reports), s)
	}
	if reports[0] != reports[2] {
		t.Fatalf("join output diverges across save/open:\n--- live ---\n%s\n--- reopened ---\n%s", reports[0], reports[2])
	}
	if reports[1] != reports[3] {
		t.Fatalf("agg output diverges across save/open:\n--- live ---\n%s\n--- reopened ---\n%s", reports[1], reports[3])
	}

	// The golden file pins the -open one-shot path (fresh process over the
	// mapped file) modulo the temp path printed in the header line.
	var oneShot bytes.Buffer
	args := []string{
		"-open", snap,
		"-from", "Orders,Store,Disp",
		"-eq", "Orders.item=Store.item",
		"-eq", "Store.location=Disp.location",
		"-orderby", "Orders.oid,Disp.dispatcher",
		"-rows", "0",
	}
	if err := run(args, strings.NewReader(""), &oneShot); err != nil {
		t.Fatal(err)
	}
	got := oneShot.String()
	if i := strings.IndexByte(got, '\n'); i >= 0 && strings.HasPrefix(got, "opened snapshot ") {
		got = got[i+1:] // drop the header line (contains the temp path)
	} else {
		t.Fatalf("missing opened-snapshot header:\n%s", got)
	}
	golden := filepath.Join("testdata", "saveopen_golden.txt")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Fatalf("-open output drifted from %s:\n--- got ---\n%s\n--- want ---\n%s", golden, got, want)
	}
}

// TestSaveOpenFlagsRoundTrip drives the non-interactive -save / -open flags
// including the save-only invocation (no -from) and the corrupt-file error.
func TestSaveOpenFlagsRoundTrip(t *testing.T) {
	orders, _, _ := writeTSVs(t)
	snap := filepath.Join(t.TempDir(), "orders.fdb")
	var out bytes.Buffer
	if err := run([]string{"-load", orders, "-save", snap}, strings.NewReader(""), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "saved snapshot ") {
		t.Fatalf("save-only invocation did not report the file:\n%s", out.String())
	}
	var reopened bytes.Buffer
	args := []string{"-open", snap, "-from", "Orders", "-orderby", "Orders.oid,Orders.item", "-rows", "0"}
	if err := run(args, strings.NewReader(""), &reopened); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"o1\tMilk", "o3\tMelon"} {
		if !strings.Contains(reopened.String(), want) {
			t.Fatalf("reopened rows missing %q:\n%s", want, reopened.String())
		}
	}
	// A corrupted file must fail loudly, not open.
	raw, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xff
	bad := filepath.Join(t.TempDir(), "bad.fdb")
	if err := os.WriteFile(bad, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-open", bad, "-from", "Orders"}, strings.NewReader(""), &bytes.Buffer{}); err == nil {
		t.Fatal("corrupted snapshot opened without error")
	}
}

// TestWriteFlags drives the one-shot -insert/-delete/-upsert flags.
func TestWriteFlags(t *testing.T) {
	orders, _, _ := writeTSVs(t)
	var out bytes.Buffer
	args := []string{
		"-load", orders,
		"-insert", "Orders:o9,Bread",
		"-delete", "Orders:o2,Melon",
		"-upsert", "Orders:1:o1,Butter",
		"-from", "Orders",
		"-orderby", "Orders.oid,Orders.item",
		"-rows", "0",
	}
	if err := run(args, strings.NewReader(""), &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"o9\tBread", "o1\tButter"} {
		if !strings.Contains(s, want) {
			t.Fatalf("written rows missing %q:\n%s", want, s)
		}
	}
	for _, gone := range []string{"o2\tMelon", "o1\tMilk", "o1\tCheese"} {
		if strings.Contains(s, gone) {
			t.Fatalf("deleted/displaced row %q still printed:\n%s", gone, s)
		}
	}
	// Malformed write flags error out.
	for name, bad := range map[string][]string{
		"insert":     {"-load", orders, "-insert", "Orders", "-from", "Orders"},
		"upsert":     {"-load", orders, "-upsert", "Orders:o1,Milk", "-from", "Orders"},
		"upsert key": {"-load", orders, "-upsert", "Orders:x:o1,Milk", "-from", "Orders"},
	} {
		if err := run(bad, strings.NewReader(""), &bytes.Buffer{}); err == nil {
			t.Errorf("%s: malformed flag accepted", name)
		}
	}
}

// TestRunErrors: the CLI surfaces clause errors instead of printing.
func TestRunErrors(t *testing.T) {
	orders, _, _ := writeTSVs(t)
	for name, args := range map[string][]string{
		"missing from":  {"-load", orders, "-orderby", "Orders.oid"},
		"bad orderattr": {"-load", orders, "-from", "Orders", "-orderby", "Orders.zzz"},
		"agg and limit": {"-load", orders, "-from", "Orders", "-agg", "count", "-limit", "3"},
	} {
		var out bytes.Buffer
		if err := run(args, strings.NewReader(""), &out); err == nil {
			t.Errorf("%s: expected an error", name)
		}
	}
}
