// Command fdb runs select-project-join queries over tab-separated relation
// files and prints the factorised result, its f-tree, and size statistics.
// Queries are compiled once with the prepared-statement API and executed
// with bound parameters.
//
//	fdb -load orders.tsv -load store.tsv -load disp.tsv \
//	    -from Orders,Store,Disp \
//	    -eq Orders.item=Store.item -eq Store.location=Disp.location \
//	    [-where 'Orders.oid<=3'] [-where 'Orders.item=$item' -param item=Milk] \
//	    [-project Orders.oid,Disp.dispatcher] [-rows 20] \
//	    [-orderby Disp.dispatcher,-Orders.oid] [-limit 5] [-offset 2] [-distinct] \
//	    [-groupby Store.location -agg count -agg 'sum(Orders.oid)']
//
// With -agg (and optionally -groupby), the query aggregates in one pass
// over the factorised result and prints one row per group.
//
// -orderby sorts the result by the named attributes (a leading '-' means
// descending); when the key prefix matches the compiled f-tree, the rows
// stream in order straight off the factorised representation and -limit
// short-circuits after n tuples. -distinct makes the set semantics explicit.
//
// A -where value of the form $name compiles to a statement parameter bound
// by a matching -param name=value flag.
//
// -insert Rel:v1,v2 / -delete Rel:v1,v2 / -upsert Rel:k:v1,v2 mutate the
// loaded relations before the query runs (upsert replaces live tuples
// matching the first k columns).
//
// -save path writes the database to a zero-copy snapshot file after the
// loads, writes and query run (the query's encoding rides along, so the
// reopened file serves it without a build); -open path starts from such a
// file instead of an empty database — it is memory-mapped, so opening skips
// the TSV parse and encode entirely:
//
//	fdb -load orders.tsv -load store.tsv -save grocery.fdb
//	fdb -open grocery.fdb -from Orders,Store -eq Orders.item=Store.item
//
// With -i, fdb starts an interactive REPL over the loaded relations:
//
//	fdb> prepare q1 from Orders,Store eq Orders.item=Store.item where Orders.oid<=$n
//	fdb> exec q1 n=3
//	fdb> query from Orders orderby -Orders.item limit 3
//	fdb> insert Orders o9 Milk
//	fdb> snapshot s1
//	fdb> squery s1 from Orders
//	fdb> release s1
//	fdb> save grocery.fdb
//	fdb> open grocery.fdb
//	fdb> stats
//
// A relation file's first line is "Name<TAB>attr1<TAB>attr2…"; every other
// line is one tuple; integer fields are stored as numbers, anything else is
// dictionary-encoded. Run without flags for a demo on the paper's grocery
// database (Figure 1).
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro"
)

type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return // -h already printed usage; that is success
		}
		fmt.Fprintln(os.Stderr, "fdb:", err)
		os.Exit(1)
	}
}

// run is the testable entry point: it parses argv, loads the relations, and
// writes every report to out.
func run(argv []string, in io.Reader, out io.Writer) error {
	fs := flag.NewFlagSet("fdb", flag.ContinueOnError)
	var loads, eqs, wheres, params, aggs multiFlag
	fs.Var(&loads, "load", "relation file to load (repeatable)")
	from := fs.String("from", "", "comma-separated relations to join")
	fs.Var(&eqs, "eq", "equality A=B over qualified attributes (repeatable)")
	fs.Var(&wheres, "where", "selection attr(=|!=|<|<=|>|>=)value; value $name binds a parameter (repeatable)")
	fs.Var(&params, "param", "parameter binding name=value for $name placeholders (repeatable)")
	project := fs.String("project", "", "comma-separated attributes to keep")
	fs.Var(&aggs, "agg", "aggregate count | sum(A) | min(A) | max(A) | distinct(A) (repeatable)")
	groupBy := fs.String("groupby", "", "comma-separated attributes to group the aggregates by")
	orderBy := fs.String("orderby", "", "comma-separated sort keys; prefix an attribute with '-' for descending")
	limit := fs.Int("limit", -1, "cap the result at n tuples (top-k with -orderby); -1: no limit")
	offset := fs.Int("offset", 0, "skip the first n tuples of the (ordered) result")
	distinct := fs.Bool("distinct", false, "deduplicate the result on the factorised form (explicit set semantics)")
	rows := fs.Int("rows", 10, "result rows to print (0: all)")
	interactive := fs.Bool("i", false, "start an interactive REPL after loading")
	openPath := fs.String("open", "", "open a snapshot file (memory-mapped, zero-copy) instead of starting empty")
	savePath := fs.String("save", "", "write the database to this snapshot file after loads, writes and the query")
	var inserts, deletes, upserts multiFlag
	fs.Var(&inserts, "insert", "insert a tuple Rel:v1,v2,... before the query (repeatable)")
	fs.Var(&deletes, "delete", "delete a tuple Rel:v1,v2,... before the query (repeatable)")
	fs.Var(&upserts, "upsert", "upsert a tuple Rel:k:v1,v2,... replacing live tuples that match on the first k columns (repeatable)")
	if err := fs.Parse(argv); err != nil {
		return err
	}

	var db *fdb.DB
	if *openPath != "" {
		var err error
		if db, err = fdb.OpenSnapshotFile(*openPath); err != nil {
			return err
		}
		fmt.Fprintf(out, "opened snapshot %s (version %d, %d relations)\n", *openPath, db.Version(), len(db.Relations()))
	} else {
		db = fdb.New()
	}
	for _, f := range loads {
		if _, err := db.LoadTSV(f); err != nil {
			return err
		}
	}
	if err := applyWrites(db, inserts, deletes, upserts); err != nil {
		return err
	}
	if *interactive {
		repl(db, *rows, in, out)
		return nil
	}
	if len(loads) == 0 && *from == "" && *openPath == "" {
		return demo(out)
	}
	if *from == "" {
		if *savePath != "" {
			return saveSnapshot(db, *savePath, out)
		}
		if *openPath != "" {
			return nil // open-and-inspect: the header line is the report
		}
		return fmt.Errorf("missing -from")
	}
	var clauses []fdb.Clause
	clauses = append(clauses, fdb.From(strings.Split(*from, ",")...))
	for _, e := range eqs {
		parts := strings.SplitN(e, "=", 2)
		if len(parts) != 2 {
			return fmt.Errorf("bad -eq %q", e)
		}
		clauses = append(clauses, fdb.Eq(parts[0], parts[1]))
	}
	for _, w := range wheres {
		c, err := parseWhere(w)
		if err != nil {
			return err
		}
		clauses = append(clauses, c)
	}
	if *project != "" {
		clauses = append(clauses, fdb.Project(strings.Split(*project, ",")...))
	}
	if *orderBy != "" {
		clauses = append(clauses, parseOrderBy(*orderBy))
	}
	if *distinct {
		clauses = append(clauses, fdb.Distinct())
	}
	if *offset > 0 {
		clauses = append(clauses, fdb.Offset(*offset))
	}
	if *limit >= 0 {
		clauses = append(clauses, fdb.Limit(*limit))
	}
	if *groupBy != "" {
		clauses = append(clauses, fdb.GroupBy(strings.Split(*groupBy, ",")...))
	}
	for _, a := range aggs {
		c, err := parseAgg(a)
		if err != nil {
			return err
		}
		clauses = append(clauses, c)
	}
	// With -save the statement goes through the plan cache so its memoised
	// encoding rides along in the snapshot file.
	var stmt *fdb.Stmt
	var err error
	if *savePath != "" {
		stmt, err = db.PrepareCached(clauses...)
	} else {
		stmt, err = db.Prepare(clauses...)
	}
	if err != nil {
		return err
	}
	args, err := parseArgs(params)
	if err != nil {
		return err
	}
	if len(stmt.Aggregates()) > 0 {
		ar, err := stmt.ExecAgg(args...)
		if err != nil {
			return err
		}
		reportAgg(out, ar, *rows)
	} else {
		res, err := stmt.Exec(args...)
		if err != nil {
			return err
		}
		report(out, res, *rows)
	}
	if *savePath != "" {
		return saveSnapshot(db, *savePath, out)
	}
	return nil
}

// saveSnapshot writes the database to path in the zero-copy snapshot format
// (reopen with -open or the REPL open verb) and reports the file.
func saveSnapshot(db *fdb.DB, path string, out io.Writer) error {
	if err := db.SaveSnapshot(path); err != nil {
		return err
	}
	fmt.Fprintf(out, "saved snapshot %s (version %d)\n", path, db.Version())
	return nil
}

// parseOrderBy turns "A,-B" into an OrderBy clause (leading '-': descending).
func parseOrderBy(s string) fdb.Clause {
	var keys []interface{}
	for _, tok := range strings.Split(s, ",") {
		if strings.HasPrefix(tok, "-") {
			keys = append(keys, fdb.Desc(tok[1:]))
		} else {
			keys = append(keys, fdb.Asc(tok))
		}
	}
	return fdb.OrderBy(keys...)
}

// parseAgg parses an aggregate token: count, sum(A), min(A), max(A) or
// distinct(A) (also accepted as count_distinct(A)).
func parseAgg(tok string) (fdb.Clause, error) {
	if tok == "count" {
		return fdb.Agg(fdb.Count, ""), nil
	}
	i := strings.Index(tok, "(")
	if i < 1 || !strings.HasSuffix(tok, ")") {
		return nil, fmt.Errorf("bad aggregate %q (want count, sum(A), min(A), max(A) or distinct(A))", tok)
	}
	attr := tok[i+1 : len(tok)-1]
	switch tok[:i] {
	case "sum":
		return fdb.Agg(fdb.Sum, attr), nil
	case "min":
		return fdb.Agg(fdb.Min, attr), nil
	case "max":
		return fdb.Agg(fdb.Max, attr), nil
	case "distinct", "count_distinct":
		return fdb.Agg(fdb.CountDistinct, attr), nil
	}
	return nil, fmt.Errorf("unknown aggregate function %q", tok[:i])
}

// parseWhere parses attr<op>value; a value of $name becomes a Param.
func parseWhere(w string) (fdb.Clause, error) {
	for _, op := range []struct {
		tok string
		cmp fdb.CmpOp
	}{{"!=", fdb.NE}, {"<=", fdb.LE}, {">=", fdb.GE}, {"<", fdb.LT}, {">", fdb.GT}, {"=", fdb.EQ}} {
		if i := strings.Index(w, op.tok); i > 0 {
			attr, val := w[:i], w[i+len(op.tok):]
			return fdb.Cmp(attr, op.cmp, parseValue(val)), nil
		}
	}
	return nil, fmt.Errorf("bad -where %q", w)
}

// parseValue turns a token into an int64, a Param placeholder ($name), or a
// string constant.
func parseValue(val string) interface{} {
	if strings.HasPrefix(val, "$") && len(val) > 1 {
		return fdb.Param(val[1:])
	}
	if n, err := strconv.ParseInt(val, 10, 64); err == nil {
		return n
	}
	return val
}

// parseConst parses a binding value: an int64 or a literal string (no
// placeholder interpretation — a value may legitimately start with '$').
func parseConst(val string) interface{} {
	if n, err := strconv.ParseInt(val, 10, 64); err == nil {
		return n
	}
	return val
}

// applyWrites applies the -insert/-delete/-upsert flags, in that flag
// order, before the query runs: the printed result reflects the writes
// (read-your-writes through the same path the REPL verbs use).
func applyWrites(db *fdb.DB, inserts, deletes, upserts []string) error {
	for _, tok := range inserts {
		name, vals, err := parseTuple(tok)
		if err != nil {
			return fmt.Errorf("bad -insert %q: %v", tok, err)
		}
		if err := db.Insert(name, vals...); err != nil {
			return err
		}
	}
	for _, tok := range deletes {
		name, vals, err := parseTuple(tok)
		if err != nil {
			return fmt.Errorf("bad -delete %q: %v", tok, err)
		}
		if err := db.Delete(name, vals...); err != nil {
			return err
		}
	}
	for _, tok := range upserts {
		parts := strings.SplitN(tok, ":", 3)
		if len(parts) != 3 {
			return fmt.Errorf("bad -upsert %q (want Rel:k:v1,v2,...)", tok)
		}
		key, err := strconv.Atoi(parts[1])
		if err != nil {
			return fmt.Errorf("bad -upsert key count %q", parts[1])
		}
		vals := parseValues(strings.Split(parts[2], ","))
		if err := db.Upsert(parts[0], key, vals...); err != nil {
			return err
		}
	}
	return nil
}

// parseTuple parses Rel:v1,v2,... into a relation name and encoded values.
func parseTuple(tok string) (string, []interface{}, error) {
	parts := strings.SplitN(tok, ":", 2)
	if len(parts) != 2 || parts[0] == "" || parts[1] == "" {
		return "", nil, fmt.Errorf("want Rel:v1,v2,...")
	}
	return parts[0], parseValues(strings.Split(parts[1], ",")), nil
}

func parseValues(tokens []string) []interface{} {
	vals := make([]interface{}, len(tokens))
	for i, v := range tokens {
		vals[i] = parseConst(v)
	}
	return vals
}

// parseArgs turns name=value tokens into Exec arguments.
func parseArgs(tokens []string) ([]fdb.NamedArg, error) {
	var args []fdb.NamedArg
	for _, p := range tokens {
		parts := strings.SplitN(p, "=", 2)
		if len(parts) != 2 || parts[0] == "" {
			return nil, fmt.Errorf("bad parameter binding %q (want name=value)", p)
		}
		args = append(args, fdb.Arg(parts[0], parseConst(parts[1])))
	}
	return args, nil
}

func report(out io.Writer, res *fdb.Result, rows int) {
	fmt.Fprintln(out, "f-tree:")
	fmt.Fprint(out, res.FTree())
	fmt.Fprintf(out, "factorised size: %d singletons\n", res.Size())
	fmt.Fprintf(out, "tuples:          %d (flat size %d data elements)\n", res.Count(), res.FlatSize())
	if res.OrderStreamed() {
		fmt.Fprintln(out, "order:           streamed off the f-tree (no sort)")
	}
	fmt.Fprintln(out, "factorisation:")
	fmt.Fprintln(out, " ", res)
	fmt.Fprintln(out, "rows:")
	fmt.Fprint(out, res.Table(rows))
}

func reportAgg(out io.Writer, ar *fdb.AggResult, rows int) {
	fmt.Fprintf(out, "groups: %d\n", ar.Len())
	fmt.Fprint(out, ar.Table(rows))
}

// ------------------------------------------------------------------- REPL

const replHelp = `commands:
  load <path>                      load a TSV relation file
  rels                             list relations
  prepare <name> <query>           compile a statement ($x in where = parameter)
  exec <name> [k=v ...]            run a prepared statement
  query <query>                    run an ad-hoc query (through the plan cache)
  insert <Rel> v1 v2 ...           add a tuple (set semantics; visible to the next query)
  delete <Rel> v1 v2 ...           remove the exact tuple (absent: no-op)
  upsert <Rel> <k> v1 v2 ...       insert, first removing live tuples matching the first k columns
  snapshot <name>                  pin a consistent read view of the database
  squery <name> <query>            run a query against a pinned snapshot
  release <name>                   close a snapshot (its queries then fail)
  compact <Rel>                    fold the relation's delta chain into a fresh base
  save <path>                      write the database to a zero-copy snapshot file
  open <path>                      replace the session database with a snapshot file
                                   (memory-mapped; prepared statements and pinned
                                   snapshots of the old database are discarded)
  stats                            plan cache statistics
  help | quit
query syntax:
  from R1,R2 [eq A=B ...] [where ATTR(=|!=|<|<=|>|>=)VAL ...] [project A,B]
  [orderby A,-B] [limit N] [offset N] [distinct]
  [groupby A,B] [agg count|sum(A)|min(A)|max(A)|distinct(A) ...]
orderby sorts the rows (leading '-': descending); with a tree-compatible key
prefix the rows stream in order off the factorised result and limit N is
top-k. aggregation queries (agg, optionally groupby) print one row per
group, computed in a single pass over the factorised result.`

// repl reads commands from in until EOF or quit.
func repl(db *fdb.DB, rows int, in io.Reader, out io.Writer) {
	stmts := map[string]*fdb.Stmt{}
	snaps := map[string]*fdb.Snapshot{}
	sc := bufio.NewScanner(in)
	fmt.Fprintln(out, "fdb interactive — 'help' for commands")
	for {
		fmt.Fprint(out, "fdb> ")
		if !sc.Scan() {
			fmt.Fprintln(out)
			if err := sc.Err(); err != nil {
				fmt.Fprintln(out, "error reading input:", err)
			}
			return
		}
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		cmd, rest := fields[0], fields[1:]
		var err error
		switch cmd {
		case "quit", "exit":
			return
		case "help":
			fmt.Fprintln(out, replHelp)
		case "load":
			err = replLoad(db, rest, out)
		case "rels":
			for _, name := range db.Relations() {
				r, _ := db.Relation(name)
				fmt.Fprintf(out, "  %s%v: %d tuples\n", name, r.Schema, r.Cardinality())
			}
		case "prepare":
			err = replPrepare(db, stmts, rest, out)
		case "exec":
			err = replExec(stmts, rest, rows, out)
		case "query":
			err = replQuery(db, rest, rows, out)
		case "insert", "delete", "upsert":
			err = replWrite(db, cmd, rest, out)
		case "snapshot":
			err = replSnapshot(db, snaps, rest, out)
		case "squery":
			err = replSnapQuery(snaps, rest, rows, out)
		case "release":
			err = replRelease(snaps, rest, out)
		case "compact":
			if len(rest) != 1 {
				err = fmt.Errorf("usage: compact <Rel>")
			} else if err = db.Compact(rest[0]); err == nil {
				fmt.Fprintf(out, "  compacted %s (version %d)\n", rest[0], db.Version())
			}
		case "save":
			err = replSave(db, rest, out)
		case "open":
			var ndb *fdb.DB
			if ndb, err = replOpen(rest, out); ndb != nil {
				// The new database replaces the old wholesale: prepared
				// statements and pinned snapshots are views of a database
				// this session no longer serves, so they are discarded.
				db = ndb
				stmts = map[string]*fdb.Stmt{}
				for _, s := range snaps {
					s.Close()
				}
				snaps = map[string]*fdb.Snapshot{}
			}
		case "stats":
			s := db.CacheStats()
			fmt.Fprintf(out, "  plan cache: %d entries, %d hits, %d misses\n", s.Entries, s.Hits, s.Misses)
		default:
			err = fmt.Errorf("unknown command %q ('help' lists commands)", cmd)
		}
		if err != nil {
			fmt.Fprintln(out, "error:", err)
		}
	}
}

func replLoad(db *fdb.DB, rest []string, out io.Writer) error {
	if len(rest) != 1 {
		return fmt.Errorf("usage: load <path>")
	}
	name, err := db.LoadTSV(rest[0])
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "  loaded %s\n", name)
	return nil
}

func replPrepare(db *fdb.DB, stmts map[string]*fdb.Stmt, rest []string, out io.Writer) error {
	if len(rest) < 2 {
		return fmt.Errorf("usage: prepare <name> <query>")
	}
	clauses, _, err := parseQuery(rest[1:])
	if err != nil {
		return err
	}
	stmt, err := db.Prepare(clauses...)
	if err != nil {
		return err
	}
	stmts[rest[0]] = stmt
	if aggs := stmt.Aggregates(); len(aggs) > 0 {
		fmt.Fprintf(out, "  %s compiled: s(T)=%.1f, params %v, aggregates %v\n", rest[0], stmt.Cost(), stmt.Params(), aggs)
	} else {
		fmt.Fprintf(out, "  %s compiled: s(T)=%.1f, params %v\n", rest[0], stmt.Cost(), stmt.Params())
	}
	return nil
}

func replExec(stmts map[string]*fdb.Stmt, rest []string, rows int, out io.Writer) error {
	if len(rest) < 1 {
		return fmt.Errorf("usage: exec <name> [k=v ...]")
	}
	stmt, ok := stmts[rest[0]]
	if !ok {
		return fmt.Errorf("no prepared statement %q", rest[0])
	}
	args, err := parseArgs(rest[1:])
	if err != nil {
		return err
	}
	if len(stmt.Aggregates()) > 0 {
		ar, err := stmt.ExecAgg(args...)
		if err != nil {
			return err
		}
		reportAgg(out, ar, rows)
		return nil
	}
	res, err := stmt.Exec(args...)
	if err != nil {
		return err
	}
	report(out, res, rows)
	return nil
}

// replWrite handles the insert/delete/upsert verbs. Writes commit
// immediately: the next query (prepared or ad-hoc, cached or fresh) sees
// them, while pinned snapshots keep their view.
func replWrite(db *fdb.DB, verb string, rest []string, out io.Writer) error {
	switch verb {
	case "insert":
		if len(rest) < 2 {
			return fmt.Errorf("usage: insert <Rel> v1 v2 ...")
		}
		if err := db.Insert(rest[0], parseValues(rest[1:])...); err != nil {
			return err
		}
	case "delete":
		if len(rest) < 2 {
			return fmt.Errorf("usage: delete <Rel> v1 v2 ...")
		}
		if err := db.Delete(rest[0], parseValues(rest[1:])...); err != nil {
			return err
		}
	case "upsert":
		if len(rest) < 3 {
			return fmt.Errorf("usage: upsert <Rel> <keycols> v1 v2 ...")
		}
		key, err := strconv.Atoi(rest[1])
		if err != nil {
			return fmt.Errorf("bad key column count %q", rest[1])
		}
		if err := db.Upsert(rest[0], key, parseValues(rest[2:])...); err != nil {
			return err
		}
	}
	r, _ := db.Relation(rest[0])
	fmt.Fprintf(out, "  %s %s: now %d tuples (version %d)\n", verb, rest[0], r.Cardinality(), db.Version())
	return nil
}

func replSnapshot(db *fdb.DB, snaps map[string]*fdb.Snapshot, rest []string, out io.Writer) error {
	if len(rest) != 1 {
		return fmt.Errorf("usage: snapshot <name>")
	}
	if old, ok := snaps[rest[0]]; ok {
		old.Close()
	}
	snaps[rest[0]] = db.Snapshot()
	fmt.Fprintf(out, "  snapshot %s pinned at version %d\n", rest[0], snaps[rest[0]].Version())
	return nil
}

func replSnapQuery(snaps map[string]*fdb.Snapshot, rest []string, rows int, out io.Writer) error {
	if len(rest) < 2 {
		return fmt.Errorf("usage: squery <snapshot> <query>")
	}
	snap, ok := snaps[rest[0]]
	if !ok {
		return fmt.Errorf("no snapshot %q", rest[0])
	}
	clauses, hasAgg, err := parseQuery(rest[1:])
	if err != nil {
		return err
	}
	if hasAgg {
		ar, err := snap.QueryAgg(clauses...)
		if err != nil {
			return err
		}
		reportAgg(out, ar, rows)
		return nil
	}
	res, err := snap.Query(clauses...)
	if err != nil {
		return err
	}
	report(out, res, rows)
	return nil
}

func replRelease(snaps map[string]*fdb.Snapshot, rest []string, out io.Writer) error {
	if len(rest) != 1 {
		return fmt.Errorf("usage: release <name>")
	}
	snap, ok := snaps[rest[0]]
	if !ok {
		return fmt.Errorf("no snapshot %q", rest[0])
	}
	// The name stays bound to the closed snapshot: a later squery surfaces
	// the engine's closed-snapshot error instead of a lookup failure.
	snap.Close()
	fmt.Fprintf(out, "  snapshot %s released\n", rest[0])
	return nil
}

// replSave writes the session database to a snapshot file. Queries already
// run through the query verb went through the plan cache, so their
// encodings ride along and a later open serves them without a build.
func replSave(db *fdb.DB, rest []string, out io.Writer) error {
	if len(rest) != 1 {
		return fmt.Errorf("usage: save <path>")
	}
	if err := db.SaveSnapshot(rest[0]); err != nil {
		return err
	}
	fmt.Fprintf(out, "  saved snapshot %s (version %d)\n", rest[0], db.Version())
	return nil
}

// replOpen opens a snapshot file as a replacement session database (nil
// with an error when it cannot).
func replOpen(rest []string, out io.Writer) (*fdb.DB, error) {
	if len(rest) != 1 {
		return nil, fmt.Errorf("usage: open <path>")
	}
	db, err := fdb.OpenSnapshotFile(rest[0])
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(out, "  opened snapshot %s (version %d, %d relations)\n", rest[0], db.Version(), len(db.Relations()))
	return db, nil
}

func replQuery(db *fdb.DB, rest []string, rows int, out io.Writer) error {
	clauses, hasAgg, err := parseQuery(rest)
	if err != nil {
		return err
	}
	if hasAgg {
		ar, err := db.QueryAgg(clauses...)
		if err != nil {
			return err
		}
		reportAgg(out, ar, rows)
		return nil
	}
	res, err := db.Query(clauses...)
	if err != nil {
		return err
	}
	report(out, res, rows)
	return nil
}

// parseQuery parses the REPL query grammar: from R1,R2 eq A=B ... where
// ATTR<op>VAL ... project A,B orderby A,-B limit N offset N distinct
// groupby A,B agg count|sum(A)|... It also reports whether the query
// aggregates (and so runs through QueryAgg/ExecAgg rather than Query/Exec).
func parseQuery(tokens []string) ([]fdb.Clause, bool, error) {
	var clauses []fdb.Clause
	hasAgg := false
	i := 0
	for i < len(tokens) {
		switch tokens[i] {
		case "from":
			if i+1 >= len(tokens) {
				return nil, false, fmt.Errorf("from needs a relation list")
			}
			clauses = append(clauses, fdb.From(strings.Split(tokens[i+1], ",")...))
			i += 2
		case "eq":
			if i+1 >= len(tokens) {
				return nil, false, fmt.Errorf("eq needs A=B")
			}
			parts := strings.SplitN(tokens[i+1], "=", 2)
			if len(parts) != 2 {
				return nil, false, fmt.Errorf("bad eq %q", tokens[i+1])
			}
			clauses = append(clauses, fdb.Eq(parts[0], parts[1]))
			i += 2
		case "where":
			if i+1 >= len(tokens) {
				return nil, false, fmt.Errorf("where needs a condition")
			}
			c, err := parseWhere(tokens[i+1])
			if err != nil {
				return nil, false, err
			}
			clauses = append(clauses, c)
			i += 2
		case "project":
			if i+1 >= len(tokens) {
				return nil, false, fmt.Errorf("project needs an attribute list")
			}
			clauses = append(clauses, fdb.Project(strings.Split(tokens[i+1], ",")...))
			i += 2
		case "orderby":
			if i+1 >= len(tokens) {
				return nil, false, fmt.Errorf("orderby needs a key list (e.g. A,-B)")
			}
			clauses = append(clauses, parseOrderBy(tokens[i+1]))
			i += 2
		case "limit":
			if i+1 >= len(tokens) {
				return nil, false, fmt.Errorf("limit needs a count")
			}
			n, err := strconv.Atoi(tokens[i+1])
			if err != nil {
				return nil, false, fmt.Errorf("bad limit %q", tokens[i+1])
			}
			clauses = append(clauses, fdb.Limit(n))
			i += 2
		case "offset":
			if i+1 >= len(tokens) {
				return nil, false, fmt.Errorf("offset needs a count")
			}
			n, err := strconv.Atoi(tokens[i+1])
			if err != nil {
				return nil, false, fmt.Errorf("bad offset %q", tokens[i+1])
			}
			clauses = append(clauses, fdb.Offset(n))
			i += 2
		case "distinct":
			clauses = append(clauses, fdb.Distinct())
			i++
		case "groupby":
			if i+1 >= len(tokens) {
				return nil, false, fmt.Errorf("groupby needs an attribute list")
			}
			clauses = append(clauses, fdb.GroupBy(strings.Split(tokens[i+1], ",")...))
			i += 2
		case "agg":
			if i+1 >= len(tokens) {
				return nil, false, fmt.Errorf("agg needs a function (count, sum(A), min(A), max(A), distinct(A))")
			}
			c, err := parseAgg(tokens[i+1])
			if err != nil {
				return nil, false, err
			}
			clauses = append(clauses, c)
			hasAgg = true
			i += 2
		default:
			return nil, false, fmt.Errorf("unexpected token %q", tokens[i])
		}
	}
	return clauses, hasAgg, nil
}

// demo runs Q1 of the paper on the grocery database of Figure 1, then shows
// the prepared-statement flow and an ordered top-k retrieval.
func demo(out io.Writer) error {
	db := fdb.New()
	db.MustCreate("Orders", "oid", "item")
	for _, r := range [][2]string{{"01", "Milk"}, {"01", "Cheese"}, {"02", "Melon"}, {"03", "Cheese"}, {"03", "Melon"}} {
		db.MustInsert("Orders", r[0], r[1])
	}
	db.MustCreate("Store", "location", "item")
	for _, r := range [][2]string{{"Istanbul", "Milk"}, {"Istanbul", "Cheese"}, {"Istanbul", "Melon"},
		{"Izmir", "Milk"}, {"Antalya", "Milk"}, {"Antalya", "Cheese"}} {
		db.MustInsert("Store", r[0], r[1])
	}
	db.MustCreate("Disp", "dispatcher", "location")
	for _, r := range [][2]string{{"Adnan", "Istanbul"}, {"Adnan", "Izmir"}, {"Yasemin", "Istanbul"}, {"Volkan", "Antalya"}} {
		db.MustInsert("Disp", r[0], r[1])
	}
	fmt.Fprintln(out, "Q1 = Orders ⋈item Store ⋈location Disp (Example 1 of the paper)")
	res, err := db.Query(
		fdb.From("Orders", "Store", "Disp"),
		fdb.Eq("Orders.item", "Store.item"),
		fdb.Eq("Store.location", "Disp.location"))
	if err != nil {
		return err
	}
	report(out, res, 0)

	fmt.Fprintln(out, "\nprepared: same join with Orders.item = $item, compiled once")
	stmt, err := db.Prepare(
		fdb.From("Orders", "Store", "Disp"),
		fdb.Eq("Orders.item", "Store.item"),
		fdb.Eq("Store.location", "Disp.location"),
		fdb.Cmp("Orders.item", fdb.EQ, fdb.Param("item")))
	if err != nil {
		return err
	}
	for _, item := range []string{"Milk", "Cheese"} {
		r, err := stmt.Exec(fdb.Arg("item", item))
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "  item=%s: %d tuples, %d singletons\n", item, r.Count(), r.Size())
	}

	fmt.Fprintln(out, "\nordered: the join sorted by item (decoded order), first 3 rows streamed")
	ost, err := db.Prepare(
		fdb.From("Orders", "Store", "Disp"),
		fdb.Eq("Orders.item", "Store.item"),
		fdb.Eq("Store.location", "Disp.location"),
		fdb.OrderBy("Orders.item"),
		fdb.Limit(3))
	if err != nil {
		return err
	}
	ores, err := ost.Exec()
	if err != nil {
		return err
	}
	fmt.Fprint(out, ores.Table(0))

	fmt.Fprintln(out, "\naggregated: orders and distinct items per location, one pass over the f-rep")
	ar, err := db.QueryAgg(
		fdb.From("Orders", "Store", "Disp"),
		fdb.Eq("Orders.item", "Store.item"),
		fdb.Eq("Store.location", "Disp.location"),
		fdb.GroupBy("Store.location"),
		fdb.Agg(fdb.Count, ""),
		fdb.Agg(fdb.CountDistinct, "Orders.item"))
	if err != nil {
		return err
	}
	fmt.Fprint(out, ar.Table(0))
	return nil
}
