// Command fdb runs select-project-join queries over tab-separated relation
// files and prints the factorised result, its f-tree, and size statistics.
//
//	fdb -load orders.tsv -load store.tsv -load disp.tsv \
//	    -from Orders,Store,Disp \
//	    -eq Orders.item=Store.item -eq Store.location=Disp.location \
//	    [-where 'Orders.oid<=3'] [-project Orders.oid,Disp.dispatcher] \
//	    [-rows 20]
//
// A relation file's first line is "Name<TAB>attr1<TAB>attr2…"; every other
// line is one tuple; integer fields are stored as numbers, anything else is
// dictionary-encoded. Run without flags for a demo on the paper's grocery
// database (Figure 1).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro"
)

type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func main() {
	var loads, eqs, wheres multiFlag
	flag.Var(&loads, "load", "relation file to load (repeatable)")
	from := flag.String("from", "", "comma-separated relations to join")
	flag.Var(&eqs, "eq", "equality A=B over qualified attributes (repeatable)")
	flag.Var(&wheres, "where", "constant selection attr(=|!=|<|<=|>|>=)value (repeatable)")
	project := flag.String("project", "", "comma-separated attributes to keep")
	rows := flag.Int("rows", 10, "result rows to print (0: all)")
	flag.Parse()

	if len(loads) == 0 && *from == "" {
		demo()
		return
	}
	db := fdb.New()
	for _, f := range loads {
		if _, err := db.LoadTSV(f); err != nil {
			fatal(err)
		}
	}
	if *from == "" {
		fatal(fmt.Errorf("missing -from"))
	}
	var clauses []fdb.Clause
	clauses = append(clauses, fdb.From(strings.Split(*from, ",")...))
	for _, e := range eqs {
		parts := strings.SplitN(e, "=", 2)
		if len(parts) != 2 {
			fatal(fmt.Errorf("bad -eq %q", e))
		}
		clauses = append(clauses, fdb.Eq(parts[0], parts[1]))
	}
	for _, w := range wheres {
		c, err := parseWhere(w)
		if err != nil {
			fatal(err)
		}
		clauses = append(clauses, c)
	}
	if *project != "" {
		clauses = append(clauses, fdb.Project(strings.Split(*project, ",")...))
	}
	res, err := db.Query(clauses...)
	if err != nil {
		fatal(err)
	}
	report(res, *rows)
}

func parseWhere(w string) (fdb.Clause, error) {
	for _, op := range []struct {
		tok string
		cmp fdb.CmpOp
	}{{"!=", fdb.NE}, {"<=", fdb.LE}, {">=", fdb.GE}, {"<", fdb.LT}, {">", fdb.GT}, {"=", fdb.EQ}} {
		if i := strings.Index(w, op.tok); i > 0 {
			attr, val := w[:i], w[i+len(op.tok):]
			if n, err := strconv.ParseInt(val, 10, 64); err == nil {
				return fdb.Cmp(attr, op.cmp, n), nil
			}
			return fdb.Cmp(attr, op.cmp, val), nil
		}
	}
	return nil, fmt.Errorf("bad -where %q", w)
}

func report(res *fdb.Result, rows int) {
	fmt.Println("f-tree:")
	fmt.Print(res.FTree())
	fmt.Printf("factorised size: %d singletons\n", res.Size())
	fmt.Printf("tuples:          %d (flat size %d data elements)\n", res.Count(), res.FlatSize())
	fmt.Println("factorisation:")
	fmt.Println(" ", res)
	fmt.Println("rows:")
	fmt.Print(res.Table(rows))
}

// demo runs Q1 of the paper on the grocery database of Figure 1.
func demo() {
	db := fdb.New()
	db.MustCreate("Orders", "oid", "item")
	for _, r := range [][2]string{{"01", "Milk"}, {"01", "Cheese"}, {"02", "Melon"}, {"03", "Cheese"}, {"03", "Melon"}} {
		db.MustInsert("Orders", r[0], r[1])
	}
	db.MustCreate("Store", "location", "item")
	for _, r := range [][2]string{{"Istanbul", "Milk"}, {"Istanbul", "Cheese"}, {"Istanbul", "Melon"},
		{"Izmir", "Milk"}, {"Antalya", "Milk"}, {"Antalya", "Cheese"}} {
		db.MustInsert("Store", r[0], r[1])
	}
	db.MustCreate("Disp", "dispatcher", "location")
	for _, r := range [][2]string{{"Adnan", "Istanbul"}, {"Adnan", "Izmir"}, {"Yasemin", "Istanbul"}, {"Volkan", "Antalya"}} {
		db.MustInsert("Disp", r[0], r[1])
	}
	fmt.Println("Q1 = Orders ⋈item Store ⋈location Disp (Example 1 of the paper)")
	res, err := db.Query(
		fdb.From("Orders", "Store", "Disp"),
		fdb.Eq("Orders.item", "Store.item"),
		fdb.Eq("Store.location", "Disp.location"))
	if err != nil {
		fatal(err)
	}
	report(res, 0)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fdb:", err)
	os.Exit(1)
}
