// Command fdbserver serves a factorised database over the wire protocol:
// prepared statements against a shared plan cache, pipelined execution,
// per-connection snapshot pinning, batched writes, admission control and a
// STATS verb. SIGINT/SIGTERM drains gracefully: in-flight requests finish,
// new ones are refused with a draining error, then connections close.
//
// The served corpus comes from -data (a zero-copy snapshot file written by
// db.SaveSnapshot / the fdb CLI — opened by mmap, so restarts skip the
// parse+build entirely) or from -retailer-scale (the deterministic seeded
// workload); -save-snapshot writes the seeded corpus back out for the next
// restart.
//
//	fdbserver -addr 127.0.0.1:7744 -retailer-scale 4
//	fdbserver -addr 127.0.0.1:7744 -retailer-scale 0 -data retailer.fdb
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	fdb "repro"
	"repro/internal/wire"
)

// warmReadPool executes the parameter-free queries of the retailer read
// pool once, so their plans land in the shared cache with memoised
// encodings before a snapshot is cut — a -data restart then serves those
// queries from the mapped arenas without any build.
func warmReadPool(db *fdb.DB) error {
	for _, q := range wire.RetailerQueries() {
		clauses, err := q.Spec.Clauses()
		if err != nil {
			return err
		}
		st, err := db.PrepareCached(clauses...)
		if err != nil {
			return err
		}
		if len(st.Params()) > 0 {
			continue // parameterised plans cannot ride the snapshot
		}
		if len(q.Spec.Aggs) > 0 {
			_, err = st.ExecAgg()
		} else {
			_, err = st.Exec()
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func main() {
	addr := flag.String("addr", "127.0.0.1:7744", "listen address (port 0 picks a free port)")
	scale := flag.Int("retailer-scale", 1, "seed the deterministic retailer workload at this scale (0: start empty)")
	seed := flag.Int64("retailer-seed", 42, "seed for the retailer workload")
	maxConns := flag.Int("max-conns", 256, "connection limit")
	maxInflight := flag.Int("max-inflight", 64, "concurrently executing requests")
	queue := flag.Int("queue", 256, "bounded admission queue depth")
	reqTimeout := flag.Duration("req-timeout", 10*time.Second, "per-request execution budget")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown budget before force-close")
	statsEvery := flag.Duration("stats-every", 0, "print server stats at this interval (0: never)")
	dataPath := flag.String("data", "", "serve a snapshot file (mmap zero-copy open) instead of seeding")
	savePath := flag.String("save-snapshot", "", "write the loaded corpus to a snapshot file before serving")
	flag.Parse()

	var db *fdb.DB
	if *dataPath != "" {
		var err error
		if db, err = fdb.OpenSnapshotFile(*dataPath); err != nil {
			fmt.Fprintf(os.Stderr, "fdbserver: open snapshot: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("fdbserver: opened snapshot %s (version=%d, relations=%d)\n",
			*dataPath, db.Version(), len(db.Relations()))
	} else {
		db = fdb.New()
	}
	if *scale > 0 {
		if *dataPath != "" {
			fmt.Fprintf(os.Stderr, "fdbserver: -data and -retailer-scale > 0 are mutually exclusive (pass -retailer-scale 0 with -data)\n")
			os.Exit(1)
		}
		if err := wire.SeedRetailer(db, *seed, *scale); err != nil {
			fmt.Fprintf(os.Stderr, "fdbserver: seed: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("fdbserver: seeded retailer workload (seed=%d scale=%d, version=%d)\n", *seed, *scale, db.Version())
	}
	if *savePath != "" {
		// Warm the plan cache with the read pool first, so the snapshot
		// carries pre-built encodings and a -data restart serves its first
		// queries without any build.
		if err := warmReadPool(db); err != nil {
			fmt.Fprintf(os.Stderr, "fdbserver: warm for snapshot: %v\n", err)
			os.Exit(1)
		}
		if err := db.SaveSnapshot(*savePath); err != nil {
			fmt.Fprintf(os.Stderr, "fdbserver: save snapshot: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("fdbserver: saved snapshot %s (version=%d)\n", *savePath, db.Version())
	}

	srv := wire.NewServer(db, wire.Options{
		MaxConns:    *maxConns,
		MaxInflight: *maxInflight,
		Queue:       *queue,
		ReqTimeout:  *reqTimeout,
	})
	bound, err := srv.Listen(*addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fdbserver: listen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("fdbserver: serving on %s\n", bound)

	if *statsEvery > 0 {
		go func() {
			for range time.Tick(*statsEvery) {
				st := srv.Stats()
				fmt.Printf("fdbserver: conns=%d qps=%.0f reqs=%d errs=%d read_p99=%.0fus cache_hit=%.2f snaps=%d\n",
					st.Conns, st.QPS10, st.Requests, st.Errors, st.ReadP99us, st.CacheHitRate, st.OpenSnapshots)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	got := <-sig
	fmt.Printf("fdbserver: %s received, draining (budget %s)\n", got, *drainTimeout)
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "fdbserver: drain budget exceeded, connections force-closed: %v\n", err)
		os.Exit(1)
	}
	st := srv.Stats()
	fmt.Printf("fdbserver: drained cleanly (%d requests served, %d errors)\n", st.Requests, st.Errors)
}
