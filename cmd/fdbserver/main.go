// Command fdbserver serves a factorised database over the wire protocol:
// prepared statements against a shared plan cache, pipelined execution,
// per-connection snapshot pinning, batched writes, admission control and a
// STATS verb. SIGINT/SIGTERM drains gracefully: in-flight requests finish,
// new ones are refused with a draining error, then connections close.
//
//	fdbserver -addr 127.0.0.1:7744 -retailer-scale 4
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	fdb "repro"
	"repro/internal/wire"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7744", "listen address (port 0 picks a free port)")
	scale := flag.Int("retailer-scale", 1, "seed the deterministic retailer workload at this scale (0: start empty)")
	seed := flag.Int64("retailer-seed", 42, "seed for the retailer workload")
	maxConns := flag.Int("max-conns", 256, "connection limit")
	maxInflight := flag.Int("max-inflight", 64, "concurrently executing requests")
	queue := flag.Int("queue", 256, "bounded admission queue depth")
	reqTimeout := flag.Duration("req-timeout", 10*time.Second, "per-request execution budget")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown budget before force-close")
	statsEvery := flag.Duration("stats-every", 0, "print server stats at this interval (0: never)")
	flag.Parse()

	db := fdb.New()
	if *scale > 0 {
		if err := wire.SeedRetailer(db, *seed, *scale); err != nil {
			fmt.Fprintf(os.Stderr, "fdbserver: seed: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("fdbserver: seeded retailer workload (seed=%d scale=%d, version=%d)\n", *seed, *scale, db.Version())
	}

	srv := wire.NewServer(db, wire.Options{
		MaxConns:    *maxConns,
		MaxInflight: *maxInflight,
		Queue:       *queue,
		ReqTimeout:  *reqTimeout,
	})
	bound, err := srv.Listen(*addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fdbserver: listen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("fdbserver: serving on %s\n", bound)

	if *statsEvery > 0 {
		go func() {
			for range time.Tick(*statsEvery) {
				st := srv.Stats()
				fmt.Printf("fdbserver: conns=%d qps=%.0f reqs=%d errs=%d read_p99=%.0fus cache_hit=%.2f snaps=%d\n",
					st.Conns, st.QPS10, st.Requests, st.Errors, st.ReadP99us, st.CacheHitRate, st.OpenSnapshots)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	got := <-sig
	fmt.Printf("fdbserver: %s received, draining (budget %s)\n", got, *drainTimeout)
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "fdbserver: drain budget exceeded, connections force-closed: %v\n", err)
		os.Exit(1)
	}
	st := srv.Stats()
	fmt.Printf("fdbserver: drained cleanly (%d requests served, %d errors)\n", st.Requests, st.Errors)
}
