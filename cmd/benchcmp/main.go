// Command benchcmp is the CI benchmark-regression gate. Two modes:
//
//	go test -bench . -benchtime 1x -run '^$' ./... | benchcmp -record BENCH_ci.json
//	benchcmp -baseline BENCH_baseline.json -current BENCH_ci.json -threshold 0.25
//
// Record parses `go test -bench` output from stdin (concatenate several
// runs to keep per-benchmark minima) into a JSON file that also carries
// the BenchmarkCalibrate time of the run and the allocs/op of every
// benchmark run with b.ReportAllocs. Compare normalises times by the
// calibration of each side — so a baseline recorded on one machine gates
// runs on another — and exits non-zero when a tracked benchmark (default:
// the build/exec/aggregate hot paths) got more than -threshold slower,
// allocated more than -alloc-threshold extra per op (allocation counts are
// machine-portable, so no normalisation), or vanished from the current
// run.
package main

import (
	"flag"
	"fmt"
	"os"
	"regexp"

	"repro/internal/benchcmp"
)

func main() {
	record := flag.String("record", "", "parse bench output from stdin and write this JSON file")
	baseline := flag.String("baseline", "", "baseline JSON to compare against")
	current := flag.String("current", "", "current-run JSON to compare")
	threshold := flag.Float64("threshold", 0.25, "allowed slowdown of tracked benchmarks (0.25 = 25%)")
	allocThreshold := flag.Float64("alloc-threshold", 0.25, "allowed allocs/op growth of tracked benchmarks (0.25 = 25%)")
	tracked := flag.String("tracked", "Build|Exec|Aggregate", "regexp of benchmark names gated for regression")
	flag.Parse()

	switch {
	case *record != "":
		res, err := benchcmp.ParseGoBench(os.Stdin)
		if err != nil {
			fatal(err)
		}
		if err := res.WriteFile(*record); err != nil {
			fatal(err)
		}
		fmt.Printf("recorded %d benchmarks (calibration %.0f ns) to %s\n",
			len(res.Benchmarks), res.CalibrationNS, *record)
	case *baseline != "" && *current != "":
		re, err := regexp.Compile(*tracked)
		if err != nil {
			fatal(err)
		}
		base, err := benchcmp.ReadFile(*baseline)
		if err != nil {
			fatal(err)
		}
		cur, err := benchcmp.ReadFile(*current)
		if err != nil {
			fatal(err)
		}
		cmp := benchcmp.Compare(base, cur, re, *threshold, *allocThreshold)
		cmp.Report(os.Stdout)
		if cmp.Failed() {
			fmt.Printf("FAIL: tracked hot path regressed beyond %.0f%% time (normalised) or %.0f%% allocs/op\n",
				*threshold*100, *allocThreshold*100)
			os.Exit(1)
		}
		fmt.Println("benchmark gate passed")
	default:
		fmt.Fprintln(os.Stderr, "usage: benchcmp -record out.json < bench.txt")
		fmt.Fprintln(os.Stderr, "       benchcmp -baseline base.json -current cur.json [-threshold 0.25] [-alloc-threshold 0.25] [-tracked RE]")
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchcmp:", err)
	os.Exit(1)
}
