package main

import (
	"bytes"
	"context"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"
	"sync"
	"time"

	fdb "repro"
	"repro/internal/wire"
)

const (
	mixRead     = "read"
	mixMixed    = "mixed"
	mixSnapshot = "snapshot"

	// writeBase is the first oid of the range reserved for the mixed
	// workload's writes; seed oids stay far below it, so the writes never
	// collide with seed data and a full cleanup restores the seed state
	// exactly (set semantics).
	writeBase = 1_000_000
	// writeStride separates the oid ranges of concurrent workers.
	writeStride = 100_000
)

type config struct {
	addr     string
	conns    []int
	mixes    []string
	duration time.Duration
	seed     int64
	scale    int
	csvPath  string
	jsonPath string
	bench    bool
	qps      int
}

// cell is one sweep point's measurements.
type cell struct {
	Mix         string  `json:"mix"`
	Conns       int     `json:"conns"`
	DurationS   float64 `json:"duration_s"`
	Ops         int64   `json:"ops"`
	Reads       int64   `json:"reads"`
	Writes      int64   `json:"writes"`
	Snapshots   int64   `json:"snapshots"`
	Errors      int64   `json:"errors"`
	Checked     int64   `json:"checked"`
	Divergences int64   `json:"divergences"`
	QPS         float64 `json:"qps"`
	P50ms       float64 `json:"p50_ms"`
	P99ms       float64 `json:"p99_ms"`
}

// summary is the whole run, written as -json.
type summary struct {
	Addr             string `json:"addr"`
	Seed             int64  `json:"seed"`
	Scale            int    `json:"scale"`
	Cells            []cell `json:"cells"`
	TotalOps         int64  `json:"total_ops"`
	TotalErrors      int64  `json:"total_errors"`
	TotalDivergences int64  `json:"total_divergences"`
}

// reference executes the same statements through the library API on an
// identically seeded database and renders them exactly as the server does;
// its encoded bytes are the differential oracle.
type reference struct {
	db      *fdb.DB
	queries []wire.LoadQuery
	stmts   []*fdb.Stmt
}

func newReference(seed int64, scale int) (*reference, error) {
	db := fdb.New()
	if err := wire.SeedRetailer(db, seed, scale); err != nil {
		return nil, err
	}
	r := &reference{db: db, queries: wire.RetailerQueries()}
	for _, q := range r.queries {
		clauses, err := q.Spec.Clauses()
		if err != nil {
			return nil, err
		}
		st, err := db.PrepareCached(clauses...)
		if err != nil {
			return nil, fmt.Errorf("reference prepare %s: %v", q.Name, err)
		}
		r.stmts = append(r.stmts, st)
	}
	return r, nil
}

// encoded returns the wire encoding of query qi's library-side result.
func (r *reference) encoded(qi int, args []wire.Arg) ([]byte, error) {
	fargs := make([]fdb.NamedArg, len(args))
	for i, a := range args {
		fargs[i] = fdb.Arg(a.Name, a.Val.Native())
	}
	st, q := r.stmts[qi], r.queries[qi]
	var rows *wire.Rows
	if q.Spec.IsAgg() {
		res, err := st.ExecAgg(fargs...)
		if err != nil {
			return nil, err
		}
		rows = &wire.Rows{Schema: res.Schema(), Rows: res.Rows(0)}
	} else {
		res, err := st.Exec(fargs...)
		if err != nil {
			return nil, err
		}
		rows = &wire.Rows{Schema: res.Schema(), Rows: res.Rows(0)}
	}
	return wire.EncodeRows(rows), nil
}

// workerStats accumulates one worker's counters; merged after the join.
type workerStats struct {
	lat         []int64
	ops         int64
	reads       int64
	writes      int64
	snaps       int64
	errors      int64
	checked     int64
	divergences int64
}

// runLoad executes the full sweep and returns the summary. Progress and
// results go to out.
func runLoad(cfg config, out io.Writer) (*summary, error) {
	addr := cfg.addr
	if addr == "" {
		db := fdb.New()
		if err := wire.SeedRetailer(db, cfg.seed, cfg.scale); err != nil {
			return nil, err
		}
		srv := wire.NewServer(db, wire.Options{})
		bound, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			_ = srv.Shutdown(ctx)
		}()
		addr = bound.String()
		fmt.Fprintf(out, "fdload: started in-process server on %s\n", addr)
	}
	ref, err := newReference(cfg.seed, cfg.scale)
	if err != nil {
		return nil, err
	}

	sum := &summary{Addr: addr, Seed: cfg.seed, Scale: cfg.scale}
	fmt.Fprintf(out, "fdload: sweep: mixes=%v conns=%v duration=%s seed=%d scale=%d\n",
		cfg.mixes, cfg.conns, cfg.duration, cfg.seed, cfg.scale)
	cellIdx := 0
	for _, mix := range cfg.mixes {
		for _, nconns := range cfg.conns {
			c, err := runCell(addr, ref, mix, nconns, cfg, cellIdx)
			if err != nil {
				return nil, fmt.Errorf("cell %s/%d: %v", mix, nconns, err)
			}
			fmt.Fprintf(out, "fdload: mix=%-8s conns=%-3d ops=%-7d qps=%-8.0f p50=%.2fms p99=%.2fms errors=%d checked=%d divergences=%d\n",
				c.Mix, c.Conns, c.Ops, c.QPS, c.P50ms, c.P99ms, c.Errors, c.Checked, c.Divergences)
			sum.Cells = append(sum.Cells, *c)
			sum.TotalOps += c.Ops
			sum.TotalErrors += c.Errors
			sum.TotalDivergences += c.Divergences
			cellIdx++
		}
	}

	if cfg.csvPath != "" {
		if err := writeCSV(cfg.csvPath, sum.Cells); err != nil {
			return nil, err
		}
	}
	if cfg.jsonPath != "" {
		blob, err := json.MarshalIndent(sum, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(cfg.jsonPath, append(blob, '\n'), 0o644); err != nil {
			return nil, err
		}
	}
	if cfg.bench {
		for _, c := range sum.Cells {
			// go-bench format so the benchcmp gate parses it directly.
			fmt.Fprintf(out, "BenchmarkFdloadP99/mix=%s/conns=%d \t 1 \t %.0f ns/op\n",
				c.Mix, c.Conns, c.P99ms*1e6)
		}
	}
	return sum, nil
}

// runCell runs one (mix, conns) sweep point.
func runCell(addr string, ref *reference, mix string, nconns int, cfg config, cellIdx int) (*cell, error) {
	clients := make([]*wire.Client, nconns)
	for i := range clients {
		cl, err := wire.Dial(addr)
		if err != nil {
			return nil, err
		}
		defer cl.Close()
		clients[i] = cl
	}

	stats := make([]workerStats, nconns)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < nconns; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.seed + int64(cellIdx)*1009 + int64(w)*13))
			runWorker(clients[w], ref, mix, cfg, rng, cellIdx*1000+w, &stats[w])
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	c := &cell{Mix: mix, Conns: nconns, DurationS: elapsed.Seconds()}
	var lat []int64
	for i := range stats {
		s := &stats[i]
		lat = append(lat, s.lat...)
		c.Ops += s.ops
		c.Reads += s.reads
		c.Writes += s.writes
		c.Snapshots += s.snaps
		c.Errors += s.errors
		c.Checked += s.checked
		c.Divergences += s.divergences
	}
	if elapsed > 0 {
		c.QPS = float64(c.Ops) / elapsed.Seconds()
	}
	if len(lat) > 0 {
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		c.P50ms = float64(lat[int(0.50*float64(len(lat)-1))]) / 1e6
		c.P99ms = float64(lat[int(0.99*float64(len(lat)-1))]) / 1e6
	}

	if mix == mixMixed {
		// The mixed cell must have restored the seed state; verify it by
		// comparing the parameter-free read pool against the reference.
		cl := clients[0]
		for qi, q := range ref.queries {
			rs, err := cl.Prepare(&ref.queries[qi].Spec)
			if err != nil {
				return nil, fmt.Errorf("post-cell prepare: %v", err)
			}
			if len(rs.Params) > 0 {
				continue // needs bindings; the parameter-free pool suffices
			}
			got, err := rs.Exec(0, 0)
			if err != nil {
				return nil, fmt.Errorf("post-cell exec %s: %v", q.Name, err)
			}
			want, err := ref.encoded(qi, nil)
			if err != nil {
				return nil, err
			}
			if !bytes.Equal(wire.EncodeRows(got), want) {
				c.Divergences++
				fmt.Fprintf(os.Stderr, "fdload: mixed cell did not restore seed state (%s diverges)\n", q.Name)
			}
		}
	}
	return c, nil
}

// runWorker is one connection's load loop for the cell's duration.
func runWorker(cl *wire.Client, ref *reference, mix string, cfg config, rng *rand.Rand, workerID int, st *workerStats) {
	queries := ref.queries
	stmts := make([]*wire.RemoteStmt, len(queries))
	for i := range queries {
		rs, err := cl.Prepare(&queries[i].Spec)
		if err != nil {
			st.errors++
			return
		}
		stmts[i] = rs
	}

	var interval time.Duration
	if cfg.qps > 0 {
		interval = time.Second / time.Duration(cfg.qps)
	}
	next := time.Now()

	// Mixed mix: this worker's private oid range and its live rows.
	oidNext := int64(writeBase + workerID*writeStride)
	var inserted [][]wire.Value

	deadline := time.Now().Add(cfg.duration)
	for time.Now().Before(deadline) {
		if interval > 0 {
			if d := time.Until(next); d > 0 {
				time.Sleep(d)
			}
			next = next.Add(interval)
		}
		switch {
		case mix == mixMixed && rng.Intn(10) == 0:
			// 10% writes: grow the private range, occasionally shrink it.
			if len(inserted) > 4 && rng.Intn(3) == 0 {
				row := inserted[len(inserted)-1]
				inserted = inserted[:len(inserted)-1]
				t0 := time.Now()
				_, err := cl.Delete("Orders", [][]wire.Value{row})
				st.lat = append(st.lat, time.Since(t0).Nanoseconds())
				st.ops++
				if err != nil {
					st.errors++
				} else {
					st.writes++
				}
			} else {
				row := []wire.Value{wire.Int(oidNext), wire.Int(int64(rng.Intn(50) + 1))}
				oidNext++
				t0 := time.Now()
				_, err := cl.Insert("Orders", [][]wire.Value{row})
				st.lat = append(st.lat, time.Since(t0).Nanoseconds())
				st.ops++
				if err != nil {
					st.errors++
				} else {
					st.writes++
					inserted = append(inserted, row)
				}
			}
		case mix == mixSnapshot:
			snap, err := cl.Snapshot()
			if err != nil {
				st.errors++
				st.ops++
				continue
			}
			st.snaps++
			for i := 0; i < 5; i++ {
				qi := rng.Intn(len(queries))
				args := queries[qi].Args(rng)
				t0 := time.Now()
				rows, err := stmts[qi].Exec(snap.ID, 0, args...)
				st.lat = append(st.lat, time.Since(t0).Nanoseconds())
				st.ops++
				if err != nil {
					st.errors++
					continue
				}
				st.reads++
				// The snapshot mix runs against an unchanging seed state, so
				// pinned reads are checked against the reference too.
				checkRead(ref, qi, args, rows, st)
			}
			if err := cl.Release(snap.ID); err != nil {
				st.errors++
			}
		default:
			qi := rng.Intn(len(queries))
			args := queries[qi].Args(rng)
			t0 := time.Now()
			rows, err := stmts[qi].Exec(0, 0, args...)
			st.lat = append(st.lat, time.Since(t0).Nanoseconds())
			st.ops++
			if err != nil {
				st.errors++
				continue
			}
			st.reads++
			if mix == mixRead {
				// Only the read-only mix checks live reads: the mixed mix
				// races its own writes, so its live reads have no stable
				// oracle (the cell-end restoration check covers it).
				checkRead(ref, qi, args, rows, st)
			}
		}
	}

	// Mixed cleanup: put the database back to the seed state.
	if len(inserted) > 0 {
		if _, err := cl.Delete("Orders", inserted); err != nil {
			st.errors++
		}
	}
	for _, rs := range stmts {
		if rs != nil {
			if err := rs.Close(); err != nil {
				st.errors++
			}
		}
	}
}

// checkRead compares one wire response byte for byte against library
// execution of the same statement and arguments.
func checkRead(ref *reference, qi int, args []wire.Arg, rows *wire.Rows, st *workerStats) {
	want, err := ref.encoded(qi, args)
	if err != nil {
		st.errors++
		return
	}
	st.checked++
	if !bytes.Equal(wire.EncodeRows(rows), want) {
		st.divergences++
	}
}

func writeCSV(path string, cells []cell) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write([]string{"mix", "conns", "duration_s", "ops", "reads", "writes", "snapshots", "errors", "checked", "divergences", "qps", "p50_ms", "p99_ms"}); err != nil {
		return err
	}
	for _, c := range cells {
		rec := []string{
			c.Mix, fmt.Sprint(c.Conns), fmt.Sprintf("%.2f", c.DurationS),
			fmt.Sprint(c.Ops), fmt.Sprint(c.Reads), fmt.Sprint(c.Writes), fmt.Sprint(c.Snapshots),
			fmt.Sprint(c.Errors), fmt.Sprint(c.Checked), fmt.Sprint(c.Divergences),
			fmt.Sprintf("%.1f", c.QPS), fmt.Sprintf("%.3f", c.P50ms), fmt.Sprintf("%.3f", c.P99ms),
		}
		if err := w.Write(rec); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}
