package main

import (
	"encoding/csv"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestRunLoadSmoke runs the full sweep (all three mixes, two connection
// counts) against an in-process server and requires zero protocol errors
// and zero divergences — the same check CI's server job runs via the
// binary.
func TestRunLoadSmoke(t *testing.T) {
	dir := t.TempDir()
	cfg := config{
		conns:    []int{1, 2},
		mixes:    []string{mixRead, mixMixed, mixSnapshot},
		duration: 400 * time.Millisecond,
		seed:     42,
		scale:    1,
		csvPath:  filepath.Join(dir, "load.csv"),
		jsonPath: filepath.Join(dir, "load.json"),
	}
	sum, err := runLoad(cfg, io.Discard)
	if err != nil {
		t.Fatalf("runLoad: %v", err)
	}
	if len(sum.Cells) != 6 {
		t.Fatalf("got %d cells, want 6", len(sum.Cells))
	}
	if sum.TotalErrors != 0 || sum.TotalDivergences != 0 {
		t.Fatalf("load run not clean: %d errors, %d divergences", sum.TotalErrors, sum.TotalDivergences)
	}
	if sum.TotalOps == 0 {
		t.Fatal("no operations completed")
	}
	for _, c := range sum.Cells {
		if c.Mix == mixRead && c.Checked == 0 {
			t.Fatalf("read cell conns=%d checked nothing", c.Conns)
		}
		if c.Ops > 0 && c.P99ms <= 0 {
			t.Fatalf("cell %s/%d has ops but no p99", c.Mix, c.Conns)
		}
	}

	f, err := os.Open(cfg.csvPath)
	if err != nil {
		t.Fatalf("csv missing: %v", err)
	}
	defer f.Close()
	recs, err := csv.NewReader(f).ReadAll()
	if err != nil {
		t.Fatalf("csv unparseable: %v", err)
	}
	if len(recs) != 7 { // header + 6 cells
		t.Fatalf("csv has %d records, want 7", len(recs))
	}

	blob, err := os.ReadFile(cfg.jsonPath)
	if err != nil {
		t.Fatalf("json missing: %v", err)
	}
	var back summary
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatalf("json unparseable: %v", err)
	}
	if back.TotalOps != sum.TotalOps || len(back.Cells) != 6 {
		t.Fatalf("json summary does not match the run: %+v", back)
	}
}

// TestParseInts covers the sweep-list flag parser.
func TestParseInts(t *testing.T) {
	got, err := parseInts("1, 4,16")
	if err != nil || len(got) != 3 || got[0] != 1 || got[1] != 4 || got[2] != 16 {
		t.Fatalf("parseInts: %v %v", got, err)
	}
	for _, bad := range []string{"", "0", "-1", "x", "1,,2"} {
		if _, err := parseInts(bad); err == nil {
			t.Fatalf("parseInts(%q) accepted", bad)
		}
	}
}
