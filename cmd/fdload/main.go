// Command fdload drives a wire server with a deterministic load sweep:
// connection counts × workload mixes (read-only, 90/10 read-write,
// snapshot-heavy), measuring throughput and tail latency per cell. It
// doubles as an integration test: in the read-only and snapshot mixes
// every wire response is checked byte for byte against library API
// execution of the same statement on an identical in-process database, and
// the mixed cell restores the seed state and verifies the restoration —
// any protocol error or divergence fails the run.
//
//	fdload -conns 1,4 -mixes read,mixed,snapshot -duration 3s \
//	       -csv load.csv -json load.json -bench
//
// With no -addr, fdload starts its own server in-process on a free port.
// -bench additionally emits `BenchmarkFdloadP99/mix=<mix>/conns=<n>` lines
// in go-bench format for the CI tail-latency gate.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"
)

func main() {
	cfg := config{}
	var conns, mixes string
	flag.StringVar(&cfg.addr, "addr", "", "server address (empty: start an in-process server)")
	flag.StringVar(&conns, "conns", "1,4", "comma-separated connection counts to sweep")
	flag.StringVar(&mixes, "mixes", "read,mixed,snapshot", "comma-separated workload mixes (read, mixed, snapshot)")
	flag.DurationVar(&cfg.duration, "duration", 3*time.Second, "wall time per sweep cell")
	flag.Int64Var(&cfg.seed, "seed", 42, "deterministic workload seed")
	flag.IntVar(&cfg.scale, "scale", 1, "retailer workload scale")
	flag.StringVar(&cfg.csvPath, "csv", "", "write per-cell results as CSV to this file")
	flag.StringVar(&cfg.jsonPath, "json", "", "write the summary as JSON to this file")
	flag.BoolVar(&cfg.bench, "bench", false, "emit go-bench p99 lines for the CI latency gate")
	flag.IntVar(&cfg.qps, "qps", 0, "per-worker target ops/sec (0: unthrottled)")
	flag.Parse()

	var err error
	if cfg.conns, err = parseInts(conns); err != nil {
		fmt.Fprintf(os.Stderr, "fdload: -conns: %v\n", err)
		os.Exit(2)
	}
	cfg.mixes = strings.Split(mixes, ",")
	for _, m := range cfg.mixes {
		if m != mixRead && m != mixMixed && m != mixSnapshot {
			fmt.Fprintf(os.Stderr, "fdload: unknown mix %q (want read, mixed or snapshot)\n", m)
			os.Exit(2)
		}
	}

	sum, err := runLoad(cfg, os.Stdout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fdload: %v\n", err)
		os.Exit(1)
	}
	if sum.TotalErrors > 0 || sum.TotalDivergences > 0 {
		fmt.Fprintf(os.Stderr, "fdload: FAILED: %d protocol errors, %d divergences\n",
			sum.TotalErrors, sum.TotalDivergences)
		os.Exit(1)
	}
	fmt.Printf("fdload: OK: %d ops across %d cells, zero errors, zero divergences\n",
		sum.TotalOps, len(sum.Cells))
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad count %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}
